#include "core/plb.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "common/assert.hpp"

namespace vpga::core {

bool PlbArchitecture::supports(ConfigKind k) const {
  return std::find(configs.begin(), configs.end(), k) != configs.end();
}

PlbArchitecture PlbArchitecture::lut_based() {
  PlbArchitecture a;
  a.name = "lut_plb";
  a.component_count[static_cast<std::size_t>(PlbComponent::kLut3)] = 1;
  a.component_count[static_cast<std::size_t>(PlbComponent::kNd3)] = 2;
  a.component_count[static_cast<std::size_t>(PlbComponent::kDff)] = 1;
  a.configs = {ConfigKind::kLut3, ConfigKind::kNd3, ConfigKind::kFf};
  // Calibrated tile geometry (see DESIGN.md): only ratios matter downstream.
  a.tile_area_um2 = 80.0;
  a.comb_area_um2 = 50.0;
  return a;
}

PlbArchitecture PlbArchitecture::granular() {
  PlbArchitecture a;
  a.name = "granular_plb";
  a.component_count[static_cast<std::size_t>(PlbComponent::kXoa)] = 1;
  a.component_count[static_cast<std::size_t>(PlbComponent::kMux)] = 2;
  a.component_count[static_cast<std::size_t>(PlbComponent::kNd3)] = 1;
  a.component_count[static_cast<std::size_t>(PlbComponent::kDff)] = 1;
  a.configs = {ConfigKind::kMx,      ConfigKind::kNd3,       ConfigKind::kNdmx,
               ConfigKind::kXoamx,   ConfigKind::kXoandmx,   ConfigKind::kFf,
               ConfigKind::kFullAdder};
  // Paper: granular PLB is ~20% larger overall, ~26.6% more combinational
  // logic area than the LUT-based PLB.
  a.tile_area_um2 = 96.0;
  a.comb_area_um2 = 63.3;
  return a;
}

PlbArchitecture PlbArchitecture::granular_with_ffs(int n) {
  VPGA_ASSERT(n >= 1 && n <= 8);
  PlbArchitecture a = granular();
  a.name = "granular_plb_ff" + std::to_string(n);
  a.component_count[static_cast<std::size_t>(PlbComponent::kDff)] = n;
  // Each extra flip-flop adds its cell area plus local routing overhead.
  a.tile_area_um2 += 16.0 * (n - 1);
  return a;
}

namespace {

/// Backtracking assignment of requirement classes to distinct slot instances.
bool assign(const std::vector<ComponentClass>& needs, std::size_t i,
            std::array<int, kNumPlbComponents>& free_slots) {
  if (i == needs.size()) return true;
  for (int c = 0; c < kNumPlbComponents; ++c) {
    if (free_slots[static_cast<std::size_t>(c)] <= 0) continue;
    if (!class_accepts(needs[i], static_cast<PlbComponent>(c))) continue;
    --free_slots[static_cast<std::size_t>(c)];
    if (assign(needs, i + 1, free_slots)) {
      ++free_slots[static_cast<std::size_t>(c)];
      return true;
    }
    ++free_slots[static_cast<std::size_t>(c)];
  }
  return false;
}

}  // namespace

bool fits_in_one_plb(const PlbArchitecture& arch, const std::vector<ConfigKind>& configs) {
  std::vector<ComponentClass> needs;
  for (ConfigKind k : configs) {
    if (!arch.supports(k)) return false;
    const auto& spec = config_spec(k);
    needs.insert(needs.end(), spec.needs.begin(), spec.needs.end());
  }
  // Order scarce (single-option) needs first: small speedup, same answer.
  std::sort(needs.begin(), needs.end(), [](ComponentClass a, ComponentClass b) {
    return std::popcount(a) < std::popcount(b);
  });
  auto free_slots = arch.component_count;
  return assign(needs, 0, free_slots);
}

std::vector<std::vector<ConfigKind>> maximal_packings(
    const PlbArchitecture& arch, const std::vector<ConfigKind>& comb_configs) {
  std::set<std::vector<ConfigKind>> all;
  // DFS over multisets (non-decreasing kind order avoids permutations).
  std::vector<ConfigKind> cur;
  cur.reserve(comb_configs.size());
  auto dfs = [&](auto&& self, std::size_t start) -> void {
    bool extended = false;
    for (std::size_t i = start; i < comb_configs.size(); ++i) {
      cur.push_back(comb_configs[i]);
      if (fits_in_one_plb(arch, cur)) {
        extended = true;
        self(self, i);
      }
      cur.pop_back();
    }
    if (!extended && !cur.empty()) all.insert(cur);
  };
  dfs(dfs, 0);
  // Drop multisets that are strict sub-multisets of another (non-maximal ones
  // can appear when extension succeeds only along a different branch order).
  std::vector<std::vector<ConfigKind>> out(all.begin(), all.end());
  auto is_submultiset = [](const std::vector<ConfigKind>& a, const std::vector<ConfigKind>& b) {
    if (a.size() >= b.size()) return false;
    std::array<int, kNumConfigKinds> cnt{};
    for (auto k : b) ++cnt[static_cast<std::size_t>(k)];
    for (auto k : a)
      if (--cnt[static_cast<std::size_t>(k)] < 0) return false;
    return true;
  };
  std::vector<std::vector<ConfigKind>> maximal;
  maximal.reserve(out.size());
  for (const auto& a : out) {
    bool dominated = false;
    for (const auto& b : out)
      if (is_submultiset(a, b)) { dominated = true; break; }
    if (!dominated) maximal.push_back(a);
  }
  return maximal;
}

}  // namespace vpga::core
