#include "core/match.hpp"

namespace vpga::core {
namespace {

template <typename Better>
std::optional<ConfigKind> best_config(const PlbArchitecture& arch, std::uint8_t tt,
                                      Better better) {
  std::optional<ConfigKind> best;
  for (ConfigKind k : arch.configs) {
    if (k == ConfigKind::kFf || k == ConfigKind::kFullAdder) continue;
    const auto& spec = config_spec(k);
    if (!spec.coverage.test(tt)) continue;
    if (!best || better(spec, config_spec(*best))) best = k;
  }
  return best;
}

}  // namespace

std::optional<ConfigKind> min_area_config(const PlbArchitecture& arch, std::uint8_t tt) {
  return best_config(arch, tt, [](const ConfigSpec& a, const ConfigSpec& b) {
    return a.mapped_area_um2 < b.mapped_area_um2;
  });
}

std::optional<ConfigKind> min_delay_config(const PlbArchitecture& arch, std::uint8_t tt) {
  return best_config(arch, tt, [](const ConfigSpec& a, const ConfigSpec& b) {
    return a.arc.intrinsic_ps < b.arc.intrinsic_ps;
  });
}

}  // namespace vpga::core
