#pragma once
/// \file fa_packing.hpp
/// Section 2.2 of the paper: packing a full adder into PLBs.
///
/// The granular PLB implements both SUM = A xor B xor Cin and
/// COUT = P*Cin + P'*G (P = A xor B, G = A*B) in one tile; the LUT-based PLB
/// must spend one 3-LUT per output and therefore needs two tiles per bit.

#include "core/plb.hpp"

namespace vpga::core {

/// How one full-adder bit maps onto an architecture.
struct FullAdderPlan {
  int plbs = 0;                      ///< tiles consumed per full-adder bit
  std::vector<ConfigKind> configs;   ///< configurations used (across tiles)
  double carry_delay_ps = 0.0;       ///< Cin-to-Cout delay (ripple-carry step)
  double sum_delay_ps = 0.0;         ///< worst input-to-SUM delay
};

/// True iff one tile of `arch` realizes both outputs of a full adder.
bool packs_full_adder(const PlbArchitecture& arch);

/// Plans a full-adder bit on `arch` (greedy: FA macro if available, otherwise
/// one minimum-area configuration per output, packed into as few tiles as
/// the resource model allows).
FullAdderPlan plan_full_adder(const PlbArchitecture& arch,
                              const library::CellLibrary& lib = library::CellLibrary::standard());

/// Tiles needed for an n-bit ripple-carry adder and its carry-chain delay.
struct RippleAdderPlan {
  int bits = 0;
  int plbs = 0;
  double critical_path_ps = 0.0;  ///< through the carry chain to the last SUM
};
RippleAdderPlan plan_ripple_adder(const PlbArchitecture& arch, int bits,
                                  const library::CellLibrary& lib = library::CellLibrary::standard());

}  // namespace vpga::core
