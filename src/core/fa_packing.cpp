#include "core/fa_packing.hpp"

#include "common/assert.hpp"
#include "core/match.hpp"
#include "logic/truth_table.hpp"

namespace vpga::core {

bool packs_full_adder(const PlbArchitecture& arch) {
  if (arch.supports(ConfigKind::kFullAdder))
    return fits_in_one_plb(arch, {ConfigKind::kFullAdder});
  // Without the macro: both outputs must fit one tile as separate configs.
  const auto sum_tt = static_cast<std::uint8_t>(logic::tt3::xor3().bits());
  const auto cout_tt = static_cast<std::uint8_t>(logic::tt3::maj3().bits());
  const auto sum_cfg = min_area_config(arch, sum_tt);
  const auto cout_cfg = min_area_config(arch, cout_tt);
  if (!sum_cfg || !cout_cfg) return false;
  return fits_in_one_plb(arch, {*sum_cfg, *cout_cfg});
}

FullAdderPlan plan_full_adder(const PlbArchitecture& arch, const library::CellLibrary& lib) {
  FullAdderPlan plan;
  if (arch.supports(ConfigKind::kFullAdder) &&
      fits_in_one_plb(arch, {ConfigKind::kFullAdder})) {
    const auto& mux = lib.spec(library::CellKind::kMux2);
    const auto& xoa = lib.spec(library::CellKind::kXoa);
    plan.plbs = 1;
    plan.configs = {ConfigKind::kFullAdder};
    // Carry step: Cin enters the COUT mux as a data pin — one mux stage,
    // loaded by the next bit's Cin pins (SUM mux data + COUT mux data).
    plan.carry_delay_ps = mux.arc.delay(2 * mux.input_cap_ff);
    // Worst SUM path: A/B through the XOA (P), then the SUM mux select.
    plan.sum_delay_ps =
        xoa.arc.delay(2 * mux.input_cap_ff) + mux.arc.delay(mux.input_cap_ff);
    return plan;
  }

  const auto sum_tt = static_cast<std::uint8_t>(logic::tt3::xor3().bits());
  const auto cout_tt = static_cast<std::uint8_t>(logic::tt3::maj3().bits());
  const auto sum_cfg = min_area_config(arch, sum_tt);
  const auto cout_cfg = min_area_config(arch, cout_tt);
  VPGA_ASSERT_MSG(sum_cfg && cout_cfg,
                  "architecture cannot realize a full adder in single configurations");
  plan.configs = {*sum_cfg, *cout_cfg};
  plan.plbs = fits_in_one_plb(arch, plan.configs) ? 1 : 2;
  const auto& sum_spec = config_spec(*sum_cfg, lib);
  const auto& cout_spec = config_spec(*cout_cfg, lib);
  const double load = 2 * lib.spec(library::CellKind::kLut3).input_cap_ff;
  plan.carry_delay_ps = cout_spec.arc.delay(load);
  plan.sum_delay_ps = sum_spec.arc.delay(load);
  return plan;
}

RippleAdderPlan plan_ripple_adder(const PlbArchitecture& arch, int bits,
                                  const library::CellLibrary& lib) {
  VPGA_ASSERT(bits >= 1);
  const auto fa = plan_full_adder(arch, lib);
  RippleAdderPlan plan;
  plan.bits = bits;
  plan.plbs = bits * fa.plbs;
  // Critical path: first SUM stage latency dominated by the carry ripple —
  // (bits - 1) carry steps plus the final SUM formation.
  plan.critical_path_ps = (bits - 1) * fa.carry_delay_ps + fa.sum_delay_ps;
  return plan;
}

}  // namespace vpga::core
