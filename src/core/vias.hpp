#pragma once
/// \file vias.hpp
/// Configuration-via accounting.
///
/// A VPGA is customized by placing vias at prefabricated candidate sites; the
/// number of candidate sites measures the local-interconnect flexibility a
/// PLB pays for in area ("the cost of higher granularity is ... an increase
/// in potential via sites", Section 2), and the number of *placed* vias per
/// design is the single-mask customization cost. This module models both.

#include "core/plb.hpp"
#include "netlist/netlist.hpp"

namespace vpga::core {

/// Candidate via sites one tile of the architecture provides (every pin of
/// every component can reach each routable source through one via).
int potential_via_sites(const PlbArchitecture& arch);

/// Vias actually placed to realize one configuration instance (pin source
/// selections + polarity programming).
int vias_for_config(ConfigKind k);

/// Via statistics of a packed design.
struct ViaReport {
  long long potential = 0;  ///< candidate sites across the used array
  long long placed = 0;     ///< programmed vias for the design's logic
  [[nodiscard]] double utilization() const {
    return potential > 0 ? static_cast<double>(placed) / static_cast<double>(potential) : 0.0;
  }
};

/// Counts vias for a compacted netlist packed into `tiles` tiles of `arch`.
ViaReport count_vias(const netlist::Netlist& nl, const PlbArchitecture& arch, int tiles);

}  // namespace vpga::core
