#pragma once
/// \file json.hpp
/// Minimal JSON parser (RFC 8259 subset) used to validate the observability
/// exports: the tests and the bench harness parse every emitted trace /
/// metrics / BENCH document back before trusting it. Not a general-purpose
/// library — no streaming, whole document in memory, object keys kept in
/// insertion order.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vpga::obs::json {

/// One parsed JSON value (tagged union kept simple over compact).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parses `text` into `out`. Returns false (with a position-annotated message
/// in `*error` when supplied) on malformed input or trailing garbage.
bool parse(std::string_view text, Value& out, std::string* error = nullptr);

/// Shortest decimal form of `v` that round-trips bit-exactly through strtod:
/// tries %.15g, %.16g, %.17g in order and keeps the first faithful one, so
/// 0.15 serializes as "0.15" rather than "0.14999999999999999". Non-finite
/// values (JSON has no literals for them) clamp to "0".
std::string format_double(double v);

}  // namespace vpga::obs::json
