#include "obs/export.hpp"

#include <cmath>
#include <string_view>

#include "obs/json.hpp"

namespace vpga::obs {
namespace {

/// `route.ripups` -> `vpga_route_ripups`. OpenMetrics names admit
/// [a-zA-Z0-9_:]; everything else becomes '_'.
std::string om_name(std::string_view name) {
  std::string out = "vpga_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string om_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json::format_double(v);
}

}  // namespace

std::string openmetrics_text(const ObsReport& report) {
  std::string out;
  std::string n;
  for (const auto& [name, value] : report.counters) {
    n = om_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : report.gauges) {
    n = om_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + om_value(value) + "\n";
  }
  for (const auto& [name, h] : report.histograms) {
    n = om_name(name);
    out += "# TYPE " + n + " histogram\n";
    long long cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out += n + "_bucket{le=\"" +
             om_value(histogram_bucket_bound(static_cast<int>(i))) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    // The spec requires a closing +Inf bucket equal to _count.
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + om_value(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

void register_serve_gauges(MetricsRegistry& registry) {
  // Names live in names.hpp::kMetricNames; the daemon will overwrite the
  // zeros with live queue/cache readings.
  registry.set_gauge("serve.queue_depth", 0.0);
  registry.set_gauge("serve.cache_hit_rate", 0.0);
}

}  // namespace vpga::obs
