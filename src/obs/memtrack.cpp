#include "obs/memtrack.hpp"

#include <cstdlib>
#include <new>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define VPGA_HAVE_MALLOC_USABLE_SIZE 1
#endif

namespace vpga::obs::memtrack {
namespace {

// Plain pointer with static (zero) initialization: safe to read from
// operator new at any point in the process lifetime, including during
// static init and thread teardown.
thread_local MemTracker* tl_tracker = nullptr;

}  // namespace

MemTracker* current() { return tl_tracker; }

long long block_size(void* p, std::size_t requested) {
#ifdef VPGA_HAVE_MALLOC_USABLE_SIZE
  if (p != nullptr) return static_cast<long long>(::malloc_usable_size(p));
#endif
  (void)p;
  return static_cast<long long>(requested);
}

ScopedMemTrack::ScopedMemTrack(MemTracker* t) : prev_(tl_tracker) {
  tl_tracker = t;
}
ScopedMemTrack::~ScopedMemTrack() { tl_tracker = prev_; }

namespace {

void* tracked_alloc(std::size_t size, bool nothrow) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  while (p == nullptr) {
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) {
      if (nothrow) return nullptr;
      throw std::bad_alloc();
    }
    h();
    p = std::malloc(size);
  }
  if (MemTracker* t = tl_tracker) t->on_alloc(block_size(p, size));
  return p;
}

void* tracked_alloc_aligned(std::size_t size, std::size_t align, bool nothrow) {
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  while (p == nullptr) {
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) {
      if (nothrow) return nullptr;
      throw std::bad_alloc();
    }
    h();
    p = std::aligned_alloc(align, rounded);
  }
  if (MemTracker* t = tl_tracker) t->on_alloc(block_size(p, rounded));
  return p;
}

void tracked_free(void* p, std::size_t requested) {
  if (p == nullptr) return;
  if (MemTracker* t = tl_tracker) t->on_free(block_size(p, requested));
  std::free(p);
}

}  // namespace
}  // namespace vpga::obs::memtrack

// ---------------------------------------------------------------------------
// Global operator new/delete replacement (C++17 full set). These are the
// program-wide allocation functions: every variant funnels into the tracked
// helpers above, whose per-thread cost when no tracker is bound is one
// thread-local load and a branch.
// ---------------------------------------------------------------------------

namespace mt = vpga::obs::memtrack;

void* operator new(std::size_t size) { return mt::tracked_alloc(size, false); }
void* operator new[](std::size_t size) { return mt::tracked_alloc(size, false); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return mt::tracked_alloc(size, true);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return mt::tracked_alloc(size, true);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return mt::tracked_alloc_aligned(size, static_cast<std::size_t>(align), false);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return mt::tracked_alloc_aligned(size, static_cast<std::size_t>(align), false);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return mt::tracked_alloc_aligned(size, static_cast<std::size_t>(align), true);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return mt::tracked_alloc_aligned(size, static_cast<std::size_t>(align), true);
}

void operator delete(void* p) noexcept { mt::tracked_free(p, 0); }
void operator delete[](void* p) noexcept { mt::tracked_free(p, 0); }
void operator delete(void* p, std::size_t size) noexcept { mt::tracked_free(p, size); }
void operator delete[](void* p, std::size_t size) noexcept { mt::tracked_free(p, size); }
void operator delete(void* p, const std::nothrow_t&) noexcept { mt::tracked_free(p, 0); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { mt::tracked_free(p, 0); }
void operator delete(void* p, std::align_val_t) noexcept { mt::tracked_free(p, 0); }
void operator delete[](void* p, std::align_val_t) noexcept { mt::tracked_free(p, 0); }
void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  mt::tracked_free(p, size);
}
void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  mt::tracked_free(p, size);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  mt::tracked_free(p, 0);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  mt::tracked_free(p, 0);
}
