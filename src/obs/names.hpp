#pragma once
/// \file names.hpp
/// Canonical registry of observability names (docs/OBSERVABILITY.md).
///
/// Every literal span / metric name used by library instrumentation appears
/// here exactly once; fabriclint's `obs.span-name` / `obs.metric-name` rules
/// (docs/LINT.md) check call-site literals against these arrays, so a name
/// typo or an undocumented metric fails lint rather than silently forking
/// the naming scheme. Dynamic families built by concatenation —
/// "verify.<stage>" and "compact.config.<KIND>" — carry a runtime suffix and
/// are exempt from the literal check by construction.
///
/// All names follow the dotted lowercase `family.detail` convention with
/// `stage.*` reserved for the flow's top-level phases.

#include <array>
#include <string_view>

namespace vpga::obs::names {

/// Trace span names (one per obs::Span call site family).
inline constexpr std::array<std::string_view, 21> kSpanNames = {
    "stage.verify",  "stage.map",   "stage.compact", "stage.buffer",
    "stage.place",   "stage.pack",  "stage.route",   "stage.sta",
    "map.tech_map",  "compact.pricing_round",
    "pack.attempt",  "pack.quadrisect", "pack.fill",
    "place.median_sweeps", "place.anneal",
    "route.decompose", "route.initial", "route.negotiate", "route.maze_repair",
    "sta.analyze",   "verify.cec",
};

/// Counter / gauge / histogram names (obs::count, obs::gauge, obs::observe).
/// The `serve.*` gauges are reserved for the flowd daemon (ROADMAP) and
/// registered by obs::register_serve_gauges so the OpenMetrics export always
/// exposes them; `flow.alloc_*` are the run-wide memtrack totals (per-span
/// totals are the dynamic "<span>.alloc_bytes" family, exempt by
/// construction like every concatenated name).
inline constexpr std::array<std::string_view, 60> kMetricNames = {
    "map.cuts_enumerated", "map.match_attempts", "map.dp_rounds", "map.nodes_emitted",
    "compact.cover_rounds",
    "pack.groups", "pack.grow_attempts", "pack.spiral_relocations", "pack.displacement_um",
    "flow.pack_sta_iterations",
    "flow.alloc_bytes", "flow.alloc_count", "flow.peak_live_bytes",
    "place.median_sweeps", "place.sa_moves", "place.sa_accepted",
    "route.nets", "route.connections", "route.ripups", "route.maze_routes",
    "route.overflow_edges", "route.peak_congestion",
    "serve.queue_depth", "serve.cache_hit_rate",
    "sta.analyses", "sta.arrival_propagations",
    "verify.checks", "verify.findings", "verify.errors", "verify.equiv.vectors",
    "verify.via_budget.overruns",
    "cec.points", "cec.tier_struct", "cec.tier_table", "cec.tier_exhaustive",
    "cec.tier_bdd", "cec.tier_sat", "cec.npn_rejects", "cec.sweep_merges", "cec.unknown",
    "cec.cache_hits",
    "cec.tier_resolved.structural", "cec.tier_resolved.truth", "cec.tier_resolved.bitsim",
    "cec.tier_resolved.bdd", "cec.tier_resolved.sat",
    "cec.bdd_nodes", "cec.bdd_ite_calls", "cec.bdd_cache_hits", "cec.bdd_fallbacks",
    "cec.corr_classes", "cec.corr_rounds", "cec.corr_permuted", "cec.corr_fallbacks",
    "cec.corr_unmatched",
    "sat.conflicts", "sat.decisions", "sat.propagations", "sat.restarts", "sat.learned",
};

/// Flight-recorder event names (obs::flight_event call sites; the structured
/// span/metric/verify events record span and rule names, which the span /
/// metric registries above already govern). Checked by fabriclint's
/// `obs.event-name` rule.
inline constexpr std::array<std::string_view, 4> kEventNames = {
    "flow.begin", "flow.end", "flow.seed", "verify.abort",
};

/// True iff `name` is a registered span name.
constexpr bool known_span(std::string_view name) {
  for (std::string_view s : kSpanNames)
    if (s == name) return true;
  return false;
}

/// True iff `name` is a registered metric name.
constexpr bool known_metric(std::string_view name) {
  for (std::string_view s : kMetricNames)
    if (s == name) return true;
  return false;
}

/// True iff `name` is a registered flight-recorder event name.
constexpr bool known_event(std::string_view name) {
  for (std::string_view s : kEventNames)
    if (s == name) return true;
  return false;
}

}  // namespace vpga::obs::names
