#pragma once
/// \file obs.hpp
/// Flow-wide observability: RAII spans, named metrics, Chrome-trace export.
///
/// The flow's quality/runtime trade-offs are invisible in the final report
/// numbers alone; this subsystem records *how* each stage got there:
///
///   - Span      — RAII scoped timer; open spans nest, so the recorded set
///                 forms a trace tree exportable to Chrome trace-event JSON
///                 (load in chrome://tracing or https://ui.perfetto.dev).
///   - Metrics   — named counters, gauges and log2-bucketed histograms with
///                 thread-safe updates.
///   - ObsContext / ScopedObs — one context per flow run, bound to the
///                 current thread; instrumentation points anywhere in the
///                 stack (obs::span-via-Span, obs::count, obs::observe,
///                 obs::gauge) reach it through a thread-local pointer, so
///                 stage APIs need no plumbing and concurrent flow runs on
///                 separate threads never share trace state.
///
/// Zero overhead when disabled: with no context bound (or tracing/metrics
/// off) every instrumentation point is a single thread-local load plus a
/// branch — no clock read, no lock, no allocation. The naming scheme and the
/// export formats are documented in docs/OBSERVABILITY.md.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/concurrency.hpp"
#include "obs/events.hpp"
#include "obs/memtrack.hpp"

namespace vpga::obs {

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

/// One closed span. `depth` is the nesting level at open time (0 = root).
/// The alloc_* fields are populated only when the run's memtrack option is
/// on (ObsReport::memtrack_enabled); attribution is innermost-span-only
/// except peak_live_bytes, which covers the span's whole subtree (see
/// memtrack.hpp).
struct SpanRecord {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  int depth = 0;
  long long alloc_bytes = 0;
  long long alloc_count = 0;
  long long peak_live_bytes = 0;
};

/// Collects spans of ONE thread's flow run. Not thread-safe by design: a
/// Tracer belongs to the ObsContext bound to exactly one thread (metrics, by
/// contrast, are thread-safe). Timestamps are steady-clock microseconds
/// relative to construction.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  int open_span() { return depth_++; }
  void close_span(std::string name, std::int64_t start_us, int depth,
                  const memtrack::FrameStats& mem = {}) {
    --depth_;
    spans_.push_back({std::move(name), start_us, now_us() - start_us, depth,
                      mem.alloc_bytes, mem.alloc_count, mem.peak_live_bytes});
  }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;  // in close order; reports re-sort by start
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Histograms use log2 buckets: bucket 0 holds v <= 1, bucket i holds
/// 2^(i-1) < v <= 2^i, the last bucket overflows to infinity.
inline constexpr int kHistogramBuckets = 40;
int histogram_bucket(double v);
/// Inclusive upper bound of bucket `i` (infinity for the last bucket).
double histogram_bucket_bound(int i);

struct HistogramData {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<long long> buckets;  // kHistogramBuckets entries once non-empty
};

/// Named counters/gauges/histograms. All updates take one uncontended mutex;
/// safe to share across threads (each flow run normally has its own registry,
/// but nothing breaks if a future driver shares one).
class MetricsRegistry {
 public:
  void add(std::string_view name, long long delta);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double value);

  [[nodiscard]] long long counter(std::string_view name) const;

  // Snapshots (sorted by name).
  [[nodiscard]] std::vector<std::pair<std::string, long long>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramData>> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, long long, std::less<>> counters_ FABRIC_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ FABRIC_GUARDED_BY(mu_);
  std::map<std::string, HistogramData, std::less<>> histograms_ FABRIC_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Immutable snapshot of one context, carried in flow::FlowReport::obs.
struct ObsReport {
  bool trace_enabled = false;
  bool metrics_enabled = false;
  bool memtrack_enabled = false;
  std::vector<SpanRecord> spans;  // sorted by (start_us, depth)
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  [[nodiscard]] int span_count(std::string_view name) const;
  [[nodiscard]] bool has_span(std::string_view name) const { return span_count(name) > 0; }
  /// Value of a counter, 0 when absent.
  [[nodiscard]] long long counter(std::string_view name) const;
  /// Histogram by name, nullptr when absent.
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;

  /// Chrome trace-event JSON ("X" complete events) for chrome://tracing or
  /// Perfetto.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// All counters/gauges/histograms as one JSON object.
  [[nodiscard]] std::string metrics_json() const;
};

// ---------------------------------------------------------------------------
// Context binding
// ---------------------------------------------------------------------------

/// One flow run's trace + metrics. Bind with ScopedObs; instrumentation
/// points below reach the bound context through a thread-local pointer.
class ObsContext {
 public:
  ObsContext(bool trace, bool metrics, bool memtrack = false)
      : trace_(trace), metrics_(metrics), memtrack_(memtrack) {}

  [[nodiscard]] bool trace_on() const { return trace_; }
  [[nodiscard]] bool metrics_on() const { return metrics_; }
  [[nodiscard]] bool memtrack_on() const { return memtrack_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_registry_; }
  [[nodiscard]] memtrack::MemTracker& memtracker() { return memtracker_; }

  [[nodiscard]] ObsReport report() const;

 private:
  bool trace_;
  bool metrics_;
  bool memtrack_;
  Tracer tracer_;
  MetricsRegistry metrics_registry_;
  memtrack::MemTracker memtracker_;
};

/// The context bound to the calling thread (nullptr = instrumentation off).
ObsContext* current();

/// RAII binding of a context to the current thread; restores the previous
/// binding on destruction, so contexts nest. Binding a context also rebinds
/// the thread's allocation tracker (the context's own when memtrack is on,
/// none otherwise), so a run's accounting never leaks into an enclosing one.
class ScopedObs {
 public:
  explicit ScopedObs(ObsContext* ctx);
  ~ScopedObs();
  ScopedObs(const ScopedObs&) = delete;
  ScopedObs& operator=(const ScopedObs&) = delete;

 private:
  ObsContext* prev_;
  memtrack::ScopedMemTrack mem_;
};

// ---------------------------------------------------------------------------
// Instrumentation points
// ---------------------------------------------------------------------------

/// RAII scoped timer + memory frame + flight-recorder boundary. With no
/// trace/memtrack-enabled context and the flight recorder off, constructing
/// one is a thread-local load plus branches — no clock read, no allocation.
/// With only the (always-on by default) flight recorder active, the name is
/// copied into a fixed on-Span buffer, still allocation-free.
class Span {
 public:
  explicit Span(std::string_view name) {
    const bool fly = flight::enabled();
    ObsContext* c = current();
    const bool tr = c != nullptr && c->trace_on();
    const bool mt = c != nullptr && c->memtrack_on();
    if (!fly && !tr && !mt) return;
    if (fly) {
      flight_ = true;
      const std::size_t len =
          name.size() < static_cast<std::size_t>(flight::kNameCapacity) - 1
              ? name.size()
              : static_cast<std::size_t>(flight::kNameCapacity) - 1;
      std::memcpy(fname_, name.data(), len);
      fname_[len] = '\0';
      flight::record(flight::EventKind::kSpanBegin, std::string_view(fname_, len));
    }
    if (tr || mt) {
      ctx_ = c;
      name_ = name;
    }
    if (tr) {
      tracer_ = &c->tracer();
      depth_ = tracer_->open_span();
      start_us_ = tracer_->now_us();
    }
    if (mt) {
      mem_ = &c->memtracker();
      mem_->push_frame();
    }
  }
  ~Span() {
    if (flight_) flight::record(flight::EventKind::kSpanEnd, fname_);
    memtrack::FrameStats mem;
    if (mem_ != nullptr) {
      mem = mem_->pop_frame();
      publish_memory(mem);
    }
    if (tracer_ != nullptr)
      tracer_->close_span(std::move(name_), start_us_, depth_, mem);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  /// Out of line: builds the "<span>.alloc_*" counter names (allocates, so
  /// only ever runs on the memtrack-enabled path).
  void publish_memory(const memtrack::FrameStats& mem);

  Tracer* tracer_ = nullptr;
  ObsContext* ctx_ = nullptr;
  memtrack::MemTracker* mem_ = nullptr;
  std::string name_;
  std::int64_t start_us_ = 0;
  int depth_ = 0;
  bool flight_ = false;
  char fname_[flight::kNameCapacity];  // set iff flight_; fixed to avoid allocation
};

/// Adds to a named counter (no-op without a metrics-enabled context). Metric
/// deltas of a metrics-enabled run also land in the flight recorder.
inline void count(std::string_view name, long long delta = 1) {
  ObsContext* c = current();
  if (c != nullptr && c->metrics_on()) {
    c->metrics().add(name, delta);
    flight::record(flight::EventKind::kMetric, name, delta);
  }
}

/// Sets a named gauge to its latest value.
inline void gauge(std::string_view name, double value) {
  ObsContext* c = current();
  if (c != nullptr && c->metrics_on()) {
    c->metrics().set_gauge(name, value);
    flight::record(flight::EventKind::kMetric, name, static_cast<std::int64_t>(value));
  }
}

/// Records one observation into a named histogram.
inline void observe(std::string_view name, double value) {
  ObsContext* c = current();
  if (c != nullptr && c->metrics_on()) {
    c->metrics().observe(name, value);
    flight::record(flight::EventKind::kMetric, name, static_cast<std::int64_t>(value));
  }
}

}  // namespace vpga::obs
