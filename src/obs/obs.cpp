#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"

namespace vpga::obs {
namespace {

thread_local ObsContext* tl_context = nullptr;

/// JSON string escaping (quotes, backslash, control characters).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  out += json::format_double(v);  // shortest faithful form; non-finite -> "0"
}

}  // namespace

int histogram_bucket(double v) {
  if (!(v > 1.0)) return 0;  // v <= 1, NaN and negatives land in bucket 0
  double bound = 1.0;
  for (int i = 1; i < kHistogramBuckets; ++i) {
    bound *= 2.0;
    if (v <= bound) return i;
  }
  return kHistogramBuckets - 1;
}

double histogram_bucket_bound(int i) {
  if (i >= kHistogramBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i);  // 2^i
}

void MetricsRegistry::add(std::string_view name, long long delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), HistogramData{}).first;
  HistogramData& h = it->second;
  if (h.buckets.empty()) h.buckets.assign(kHistogramBuckets, 0);
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[static_cast<std::size_t>(histogram_bucket(value))];
}

long long MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

std::vector<std::pair<std::string, long long>> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, HistogramData>> MetricsRegistry::histograms() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

int ObsReport::span_count(std::string_view name) const {
  int n = 0;
  for (const auto& s : spans) n += s.name == name ? 1 : 0;
  return n;
}

long long ObsReport::counter(std::string_view name) const {
  for (const auto& [k, v] : counters)
    if (k == name) return v;
  return 0;
}

const HistogramData* ObsReport::histogram(std::string_view name) const {
  for (const auto& [k, v] : histograms)
    if (k == name) return &v;
  return nullptr;
}

std::string ObsReport::chrome_trace_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, s.name);
    out += ",\"cat\":\"vpga\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    out += std::to_string(s.start_us);
    out += ",\"dur\":";
    out += std::to_string(s.dur_us);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(s.depth);
    if (memtrack_enabled) {
      out += ",\"alloc_bytes\":";
      out += std::to_string(s.alloc_bytes);
      out += ",\"alloc_count\":";
      out += std::to_string(s.alloc_count);
      out += ",\"peak_live_bytes\":";
      out += std::to_string(s.peak_live_bytes);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string ObsReport::metrics_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_double(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"min\":";
    append_double(out, h.min);
    out += ",\"max\":";
    append_double(out, h.max);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

ObsReport ObsContext::report() const {
  ObsReport r;
  r.trace_enabled = trace_;
  r.metrics_enabled = metrics_;
  r.memtrack_enabled = memtrack_;
  r.spans = tracer_.spans();
  // Spans close children-first; re-sort parent-first for readable reports.
  std::stable_sort(r.spans.begin(), r.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us != b.start_us ? a.start_us < b.start_us
                                                    : a.depth < b.depth;
                   });
  r.counters = metrics_registry_.counters();
  r.gauges = metrics_registry_.gauges();
  r.histograms = metrics_registry_.histograms();
  return r;
}

ObsContext* current() { return tl_context; }

ScopedObs::ScopedObs(ObsContext* ctx)
    : prev_(tl_context),
      mem_(ctx != nullptr && ctx->memtrack_on() ? &ctx->memtracker() : nullptr) {
  tl_context = ctx;
}
ScopedObs::~ScopedObs() { tl_context = prev_; }

void Span::publish_memory(const memtrack::FrameStats& mem) {
  // Dynamic "<span>.alloc_*" family: concatenated names are exempt from the
  // obs.metric-name literal check by construction (names.hpp). The string
  // building itself allocates and is attributed to the parent frame — the
  // bookkeeping cost of tracking, deliberately not hidden.
  MetricsRegistry& m = ctx_->metrics();
  m.add(name_ + ".alloc_bytes", mem.alloc_bytes);
  m.add(name_ + ".alloc_count", mem.alloc_count);
  const std::string peak_name = name_ + ".peak_live_bytes";
  if (m.counter(peak_name) < mem.peak_live_bytes) {
    // Counters are sums; peak is a max. Re-add the difference so repeated
    // spans of one name (e.g. stage.pack iterations) keep the true maximum.
    m.add(peak_name, mem.peak_live_bytes - m.counter(peak_name));
  } else {
    m.add(peak_name, 0);  // make sure the name exists even for a 0-peak span
  }
}

}  // namespace vpga::obs
