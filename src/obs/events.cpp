#include "obs/events.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "obs/json.hpp"

namespace vpga::obs::flight {
namespace {

/// Recorder epoch, taken during static initialization (single-threaded) so
/// the record path and the signal handler never race a lazy init.
const std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - g_epoch)
      .count();
}

bool env_enabled() {
  const char* v = std::getenv("VPGA_FLIGHT");
  return v == nullptr || std::string_view(v) != "0";
}

struct Ring {
  std::atomic<std::uint64_t> count{0};  // events ever written; release-published
  FlightEvent slots[kRingCapacity];
};

// Static storage: no allocation on the record path, reachable from a signal
// handler, and still mapped when the terminate handler runs during unwind.
Ring g_rings[kMaxRings];
std::atomic<int> g_ring_claims{0};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_enabled{env_enabled()};
std::atomic<bool> g_dumped{false};
std::atomic<bool> g_handlers_installed{false};

struct PinnedSeed {
  std::atomic<bool> set{false};
  FlightEvent event;
};
PinnedSeed g_pinned[kMaxPinnedSeeds];
std::atomic<int> g_pinned_claims{0};

// -1 = this thread has not claimed a ring yet; kMaxRings = table was full.
thread_local int tl_ring_index = -1;

Ring* ring_for_thread() {
  int idx = tl_ring_index;
  if (idx < 0) {
    idx = g_ring_claims.fetch_add(1, std::memory_order_relaxed);
    if (idx > kMaxRings) idx = kMaxRings;  // keep the claim counter bounded-ish
    tl_ring_index = idx;
  }
  return idx < kMaxRings ? &g_rings[idx] : nullptr;
}

void fill_event(FlightEvent& e, std::uint64_t seq, int ring, EventKind kind,
                std::string_view name, std::int64_t a, std::int64_t b) {
  e.seq = seq;
  e.us = now_us();
  e.ring = ring;
  e.kind = kind;
  const std::size_t len =
      name.size() < static_cast<std::size_t>(kNameCapacity) - 1
          ? name.size()
          : static_cast<std::size_t>(kNameCapacity) - 1;
  std::memcpy(e.name, name.data(), len);
  e.name[len] = '\0';
  e.a = a;
  e.b = b;
}

void pin_seed(EventKind kind, std::string_view name, std::int64_t a, std::int64_t b) {
  const int idx = g_pinned_claims.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxPinnedSeeds) return;
  PinnedSeed& p = g_pinned[idx];
  fill_event(p.event, g_seq.fetch_add(1, std::memory_order_relaxed), -1, kind,
             name, a, b);
  p.set.store(true, std::memory_order_release);
}

/// Events currently retained by `r`, oldest first. Tolerates a concurrent
/// writer (the freshly overwritten slot may tear; postmortem readers accept
/// that for the oldest entry rather than taking a lock on the hot path).
void collect_ring(const Ring& r, std::vector<FlightEvent>& out) {
  const std::uint64_t n = r.count.load(std::memory_order_acquire);
  const std::uint64_t kept =
      n < static_cast<std::uint64_t>(kRingCapacity) ? n : kRingCapacity;
  out.reserve(out.size() + kept);
  for (std::uint64_t i = n - kept; i < n; ++i)
    out.push_back(r.slots[i % kRingCapacity]);
}

// ---------------------------------------------------------------------------
// Signal-safe dump path
// ---------------------------------------------------------------------------

/// Destination path, captured eagerly (getenv is not reliably callable from
/// a signal handler once the heap may be corrupt).
char g_path[512] = "vpga_forensics.json";
std::atomic<bool> g_path_cached{false};

void cache_path() {
  if (g_path_cached.exchange(true, std::memory_order_acq_rel)) return;
  const char* env = std::getenv("VPGA_FORENSICS_PATH");
  if (env != nullptr && env[0] != '\0' && std::strlen(env) < sizeof g_path)
    std::strcpy(g_path, env);
}

/// Fixed-size formatter: enough for pinned seeds + 64 rings * 256 events at
/// ~160 bytes/event would exceed any sane static buffer, so the dump keeps
/// the newest kDumpBudget events across all rings (they are the forensics
/// payload; older context is gone by construction anyway).
constexpr int kDumpBudget = 2048;
char g_dump_buf[512 * 1024];

std::size_t append_raw(std::size_t at, const char* s) {
  while (*s != '\0' && at < sizeof g_dump_buf - 1) g_dump_buf[at++] = *s++;
  return at;
}

std::size_t append_escaped(std::size_t at, const char* s) {
  for (; *s != '\0' && at < sizeof g_dump_buf - 8; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      g_dump_buf[at++] = '\\';
      g_dump_buf[at++] = static_cast<char>(c);
    } else if (c >= 0x20) {
      g_dump_buf[at++] = static_cast<char>(c);
    }  // control characters are dropped: forensics names never contain them
  }
  return at;
}

std::size_t append_int(std::size_t at, std::int64_t v) {
  char tmp[32];
  std::snprintf(tmp, sizeof tmp, "%lld", static_cast<long long>(v));
  return append_raw(at, tmp);
}

std::size_t append_event(std::size_t at, const FlightEvent& e, bool first) {
  if (!first) at = append_raw(at, ",");
  at = append_raw(at, "{\"seq\":");
  at = append_int(at, static_cast<std::int64_t>(e.seq));
  at = append_raw(at, ",\"us\":");
  at = append_int(at, e.us);
  at = append_raw(at, ",\"thread\":");
  at = append_int(at, e.ring);
  at = append_raw(at, ",\"kind\":\"");
  at = append_raw(at, to_string(e.kind));
  at = append_raw(at, "\",\"name\":\"");
  at = append_escaped(at, e.name);
  at = append_raw(at, "\",\"a\":");
  at = append_int(at, e.a);
  at = append_raw(at, ",\"b\":");
  at = append_int(at, e.b);
  return append_raw(at, "}");
}

void sort_by_seq(std::vector<FlightEvent>& events) {
  // Insertion sort: events are nearly sorted per ring already and the dump
  // path avoids <algorithm> introspective depths on purpose (simple code
  // that cannot allocate).
  for (std::size_t i = 1; i < events.size(); ++i) {
    FlightEvent key = events[i];
    std::size_t j = i;
    for (; j > 0 && events[j - 1].seq > key.seq; --j) events[j] = events[j - 1];
    events[j] = key;
  }
}

/// Serializes reason + pinned seeds + the newest events into g_dump_buf.
/// Walks the static rings directly (no vector) so it stays signal-safe.
std::size_t format_dump(const char* reason) {
  std::size_t at = 0;
  at = append_raw(at, "{\"schema\":\"vpga.forensics.v1\",\"reason\":\"");
  at = append_escaped(at, reason);
  at = append_raw(at, "\",\"dropped\":");
  at = append_int(at, static_cast<std::int64_t>(g_dropped.load(std::memory_order_relaxed)));
  at = append_raw(at, ",\"pinned_seeds\":[");
  bool first = true;
  for (const PinnedSeed& p : g_pinned) {
    if (!p.set.load(std::memory_order_acquire)) continue;
    at = append_event(at, p.event, first);
    first = false;
  }
  at = append_raw(at, "],\"events\":[");

  // Gather slot references newest-last without allocating: index pairs into
  // a static scratch table, then emit in seq order via repeated min-scan.
  static FlightEvent scratch[kDumpBudget];
  int n = 0;
  const int rings = g_ring_claims.load(std::memory_order_relaxed) < kMaxRings
                        ? g_ring_claims.load(std::memory_order_relaxed)
                        : kMaxRings;
  for (int r = 0; r < rings && r < kMaxRings; ++r) {
    const Ring& ring = g_rings[r];
    const std::uint64_t cnt = ring.count.load(std::memory_order_acquire);
    const std::uint64_t kept =
        cnt < static_cast<std::uint64_t>(kRingCapacity) ? cnt : kRingCapacity;
    for (std::uint64_t i = cnt - kept; i < cnt && n < kDumpBudget; ++i)
      scratch[n++] = ring.slots[i % kRingCapacity];
  }
  // seq-order the merged tail (insertion sort over <= kDumpBudget PODs).
  for (int i = 1; i < n; ++i) {
    const FlightEvent key = scratch[i];
    int j = i;
    for (; j > 0 && scratch[j - 1].seq > key.seq; --j) scratch[j] = scratch[j - 1];
    scratch[j] = key;
  }
  for (int i = 0; i < n; ++i) at = append_event(at, scratch[i], i == 0);
  at = append_raw(at, "]}\n");
  return at;
}

void write_dump(const char* reason) {
  cache_path();
  const std::size_t len = format_dump(reason);
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  std::size_t off = 0;
  while (off < len) {
    const ssize_t w = ::write(fd, g_dump_buf + off, len - off);
    if (w <= 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Crash triggers
// ---------------------------------------------------------------------------

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_with_dump() {
  if (!g_dumped.exchange(true, std::memory_order_acq_rel)) write_dump("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void fatal_signal_handler(int sig) {
  if (!g_dumped.exchange(true, std::memory_order_acq_rel)) {
    char reason[32];
    std::snprintf(reason, sizeof reason, "signal:%d", sig);
    write_dump(reason);
  }
  // SA_RESETHAND restored the default action; re-raise to die with the
  // original signal (and the expected exit status for wait()ing parents).
  ::raise(sig);
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kMetric: return "metric";
    case EventKind::kVerify: return "verify";
    case EventKind::kSeed: return "seed";
    case EventKind::kMark: return "mark";
  }
  return "unknown";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void record(EventKind kind, std::string_view name, std::int64_t a, std::int64_t b) {
  if (!enabled()) return;
  if (kind == EventKind::kSeed) pin_seed(kind, name, a, b);
  Ring* r = ring_for_thread();
  if (r == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t n = r->count.load(std::memory_order_relaxed);
  fill_event(r->slots[n % kRingCapacity], g_seq.fetch_add(1, std::memory_order_relaxed),
             tl_ring_index, kind, name, a, b);
  r->count.store(n + 1, std::memory_order_release);
}

std::uint64_t dropped() { return g_dropped.load(std::memory_order_relaxed); }

std::vector<FlightEvent> snapshot() {
  std::vector<FlightEvent> out;
  out.reserve(kMaxPinnedSeeds);
  for (const PinnedSeed& p : g_pinned)
    if (p.set.load(std::memory_order_acquire)) out.push_back(p.event);
  for (const Ring& r : g_rings) collect_ring(r, out);
  sort_by_seq(out);
  return out;
}

std::string forensics_json(std::string_view reason) {
  // Reuse the signal-safe formatter so the programmatic document and the
  // crash dump are byte-compatible (one schema, one serializer).
  std::string r(reason);
  return std::string(g_dump_buf, format_dump(r.c_str()));
}

std::string forensics_path() {
  cache_path();
  return g_path;
}

bool dump_forensics(std::string_view reason) {
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return false;
  std::string r(reason);
  write_dump(r.c_str());
  return true;
}

void install_crash_handlers() {
  if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) return;
  cache_path();
  g_prev_terminate = std::set_terminate(terminate_with_dump);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = fatal_signal_handler;
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    ::sigaction(sig, &sa, nullptr);
}

void reset_for_testing() {
  for (Ring& r : g_rings) {
    r.count.store(0, std::memory_order_relaxed);
    for (FlightEvent& e : r.slots) e = FlightEvent{};
  }
  for (PinnedSeed& p : g_pinned) {
    p.set.store(false, std::memory_order_relaxed);
    p.event = FlightEvent{};
  }
  g_pinned_claims.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_dumped.store(false, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
  g_path_cached.store(false, std::memory_order_relaxed);
  // Ring claims are NOT reset: threads cache their index in a thread_local,
  // so reclaiming slot 0 for a new thread would alias a live writer.
}

}  // namespace vpga::obs::flight
