#pragma once
/// \file export.hpp
/// OpenMetrics text exposition for the metrics registry.
///
/// The future flowd daemon (ROADMAP "flow-as-a-service") needs a scrape
/// endpoint; emitting the standard OpenMetrics text format now means any
/// Prometheus-compatible scraper ingests a flow run's counters, gauges and
/// histograms for free. Name mapping: dotted obs names become underscored
/// families under a `vpga_` prefix (`route.ripups` -> `vpga_route_ripups`),
/// counters gain the mandatory `_total` sample suffix, histograms emit
/// cumulative `le` buckets plus `_sum`/`_count`, and the document ends with
/// the `# EOF` terminator the spec requires.

#include <string>

#include "obs/obs.hpp"

namespace vpga::obs {

/// One report's metrics as an OpenMetrics text document.
std::string openmetrics_text(const ObsReport& report);

/// Registers the daemon-reserved gauges (`serve.queue_depth`,
/// `serve.cache_hit_rate`) at zero so scrapes observe the metric families
/// from the first exposition, before the daemon lands.
void register_serve_gauges(MetricsRegistry& registry);

}  // namespace vpga::obs
