#pragma once
/// \file events.hpp
/// Flight recorder: a fixed-capacity, lock-free ring of structured events
/// that is always on at bounded cost and survives to a crash dump.
///
/// The span tree and metrics registry answer "where did the time go" after a
/// *successful* run; they are lost the moment the process aborts. The flight
/// recorder answers the postmortem question instead: every span boundary,
/// metric delta, verify finding and RNG seed is appended to a small
/// per-thread ring, and three triggers — std::terminate, a fatal signal, and
/// a verify-failure abort — dump the merged last-N events as forensics JSON
/// (`vpga.forensics.v1`), so a crash mid-pack ships the active span and the
/// seed that reproduces it.
///
/// Concurrency model: one ring per thread, single writer, plain stores to
/// the slot followed by a release store of the ring's event count; readers
/// (snapshot / the dump path) acquire the count and walk backwards. Rings
/// live in static storage — no allocation on the record path, and the signal
/// handler can walk them without touching the heap.
///
/// Cost when "disabled" (VPGA_FLIGHT=0): one relaxed atomic load per
/// instrumentation point. Cost when on: one clock read plus ~64 bytes of
/// plain stores per event. docs/OBSERVABILITY.md documents the event schema.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vpga::obs::flight {

/// Max bytes of an event name kept in the ring (including the NUL). Longer
/// names truncate; every registered span/metric/event name fits.
inline constexpr int kNameCapacity = 40;
/// Events retained per writer thread before the ring wraps.
inline constexpr int kRingCapacity = 256;
/// Max writer threads tracked; later threads drop events (counted).
inline constexpr int kMaxRings = 64;
/// Seed events are additionally pinned outside the rings so a long run
/// cannot evict the one event that makes the dump reproducible.
inline constexpr int kMaxPinnedSeeds = 16;

enum class EventKind : std::uint8_t {
  kSpanBegin = 0,  ///< a = depth at open
  kSpanEnd = 1,    ///< a = 0
  kMetric = 2,     ///< a = delta / rounded value
  kVerify = 3,     ///< per check: a = findings, b = errors; per error: a = severity
  kSeed = 4,       ///< a = RNG seed (also pinned)
  kMark = 5,       ///< free-form point event (obs::flight_event)
};
const char* to_string(EventKind kind);

/// One recorded event. `seq` is a global order (allocation order of a shared
/// atomic counter); `us` is microseconds since the recorder epoch (process
/// start); `ring` identifies the writer thread's slot.
struct FlightEvent {
  std::uint64_t seq = 0;
  std::int64_t us = 0;
  std::int32_t ring = 0;
  EventKind kind = EventKind::kMark;
  char name[kNameCapacity] = {};
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Recorder on/off. Defaults to on; the VPGA_FLIGHT=0 environment variable
/// turns it off for overhead experiments.
bool enabled();
void set_enabled(bool on);

/// Appends one event to the calling thread's ring (no-op when disabled or
/// when more than kMaxRings threads have recorded).
void record(EventKind kind, std::string_view name, std::int64_t a = 0,
            std::int64_t b = 0);

/// Events dropped because the writer-thread table was full.
std::uint64_t dropped();

/// Merged view of every ring (pinned seeds first, then ring events in seq
/// order). Safe to call while writers are quiescent; concurrent writers may
/// tear the oldest slots, which the dump path tolerates by design.
std::vector<FlightEvent> snapshot();

/// The merged snapshot as `vpga.forensics.v1` JSON.
std::string forensics_json(std::string_view reason);

/// Where dumps land: $VPGA_FORENSICS_PATH, else "vpga_forensics.json" in the
/// working directory.
std::string forensics_path();

/// Writes the forensics document to forensics_path() using only
/// async-signal-safe calls (static buffer + open/write). The first dump
/// wins: later triggers (e.g. the SIGABRT raised right after a verify
/// failure already dumped) are no-ops. Returns true if this call wrote.
bool dump_forensics(std::string_view reason);

/// Installs the std::terminate handler and fatal-signal handlers (SEGV, BUS,
/// ILL, FPE, ABRT) that call dump_forensics before re-raising. Idempotent.
void install_crash_handlers();

/// Drops all recorded events, pinned seeds, the dropped counter and the
/// first-dump latch. Test-only; never call with concurrent writers.
void reset_for_testing();

}  // namespace vpga::obs::flight

namespace vpga::obs {

/// Records a named point event (EventKind::kMark, or kSeed for "flow.seed")
/// in the flight recorder. The literal names used here are registered in
/// names.hpp::kEventNames and checked by fabriclint's `obs.event-name` rule.
inline void flight_event(std::string_view name, long long a = 0, long long b = 0) {
  flight::record(name == "flow.seed" ? flight::EventKind::kSeed
                                     : flight::EventKind::kMark,
                 name, a, b);
}

}  // namespace vpga::obs
