#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vpga::obs::json {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(Value& out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      if (error != nullptr) *error = message_at(err_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = message_at("trailing characters after value");
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_ == nullptr) err_ = msg;
    return false;
  }

  [[nodiscard]] std::string message_at(const char* msg) const {
    return std::string(msg != nullptr ? msg : "parse error") + " at offset " +
           std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' in object");
      ++pos_;
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return fail("invalid \\u escape");
      out = out * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: the low half must follow as another \uXXXX.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
              return fail("unpaired high surrogate");
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out.number)) return fail("number out of range");
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* err_ = nullptr;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  out = Value{};
  return Parser(text).run(out, error);
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;  // faithful; keep the shortest
  }
  return buf;
}

}  // namespace vpga::obs::json
