#pragma once
/// \file memtrack.hpp
/// Per-stage memory profiling: thread-local allocation tracking attributed
/// to the innermost active obs::Span.
///
/// memtrack.cpp replaces the global operator new/delete with thin wrappers
/// that, when (and only when) a tracker is bound to the calling thread,
/// account every allocation to the tracker's innermost open frame. Spans
/// push/pop frames, so each stage span ends up with three numbers —
/// bytes allocated, allocation count, peak live bytes — published as the
/// dynamic "<span>.alloc_bytes" / ".alloc_count" / ".peak_live_bytes"
/// counter family and as Chrome-trace args.
///
/// Off by default with zero overhead: `FlowOptions::memtrack` gates binding,
/// and an unbound thread's operator new costs one thread-local load plus a
/// branch on top of malloc. Attribution is innermost-span-only (a child's
/// allocations do NOT roll up into the parent's alloc_bytes), except peak
/// live bytes, where a parent's peak covers its children's intervals —
/// that is what "how much memory does this stage need" means.
///
/// Byte accounting uses malloc_usable_size where available, so frees of
/// blocks allocated before tracking started still balance; live-byte
/// accounting clamps at zero rather than going negative.

#include <cstddef>

namespace vpga::obs::memtrack {

/// Run-wide totals of one tracker (== one flow run on one thread).
struct Totals {
  long long alloc_bytes = 0;      ///< cumulative bytes allocated
  long long alloc_count = 0;      ///< cumulative allocations
  long long free_count = 0;       ///< cumulative frees observed
  long long live_bytes = 0;       ///< currently live (clamped at 0)
  long long peak_live_bytes = 0;  ///< max of live_bytes
};

/// Per-span slice: what was allocated while this frame was innermost, plus
/// the peak live seen during the frame's whole lifetime (children included).
struct FrameStats {
  long long alloc_bytes = 0;
  long long alloc_count = 0;
  long long peak_live_bytes = 0;
};

/// One thread's allocation ledger. Not thread-safe: bind to exactly one
/// thread via ScopedMemTrack (ObsContext does this when memtrack is on).
class MemTracker {
 public:
  /// Frames deeper than this still nest correctly but attribute to the
  /// run totals only (span trees in this codebase are ~6 deep).
  static constexpr int kMaxFrames = 64;

  void on_alloc(long long bytes) {
    totals_.alloc_bytes += bytes;
    totals_.alloc_count += 1;
    totals_.live_bytes += bytes;
    if (totals_.live_bytes > totals_.peak_live_bytes)
      totals_.peak_live_bytes = totals_.live_bytes;
    if (depth_ > 0 && depth_ <= kMaxFrames) {
      FrameStats& f = frames_[depth_ - 1];
      f.alloc_bytes += bytes;
      f.alloc_count += 1;
      if (totals_.live_bytes > f.peak_live_bytes)
        f.peak_live_bytes = totals_.live_bytes;
    }
  }

  void on_free(long long bytes) {
    totals_.free_count += 1;
    totals_.live_bytes -= bytes;
    if (totals_.live_bytes < 0) totals_.live_bytes = 0;  // pre-tracking block
  }

  /// Opens a frame; returns the new depth.
  int push_frame() {
    ++depth_;
    if (depth_ <= kMaxFrames)
      frames_[depth_ - 1] = FrameStats{.peak_live_bytes = totals_.live_bytes};
    return depth_;
  }

  /// Closes the innermost frame and returns its stats. The child's peak
  /// (not its alloc bytes/count) folds into the parent, so a parent span's
  /// peak_live_bytes covers its whole subtree.
  FrameStats pop_frame() {
    if (depth_ <= 0) return {};
    FrameStats out;
    if (depth_ <= kMaxFrames) {
      out = frames_[depth_ - 1];
      if (depth_ >= 2 && out.peak_live_bytes > frames_[depth_ - 2].peak_live_bytes)
        frames_[depth_ - 2].peak_live_bytes = out.peak_live_bytes;
    }
    --depth_;
    return out;
  }

  [[nodiscard]] const Totals& totals() const { return totals_; }
  [[nodiscard]] int depth() const { return depth_; }

 private:
  Totals totals_;
  FrameStats frames_[kMaxFrames];
  int depth_ = 0;
};

/// Tracker bound to the calling thread (nullptr = accounting off).
MemTracker* current();

/// Best-effort usable size of an allocated block: malloc_usable_size on
/// glibc, the requested size otherwise. Keeps alloc/free byte accounting
/// consistent on both sides.
long long block_size(void* p, std::size_t requested);

/// RAII thread binding, mirroring ScopedObs. Pass nullptr to suspend
/// accounting in a region (used nowhere in the library today, but the
/// tests use it to exclude their own bookkeeping).
class ScopedMemTrack {
 public:
  explicit ScopedMemTrack(MemTracker* t);
  ~ScopedMemTrack();
  ScopedMemTrack(const ScopedMemTrack&) = delete;
  ScopedMemTrack& operator=(const ScopedMemTrack&) = delete;

 private:
  MemTracker* prev_;
};

}  // namespace vpga::obs::memtrack
