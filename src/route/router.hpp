#pragma once
/// \file router.hpp
/// Global routing over the die grid — the ASIC-style custom routing that the
/// VPGA performs *on top of* the PLB array (upper metal layers), and the
/// conventional routing of the flow-a ASIC implementation.
///
/// Nets are star-decomposed into 2-pin connections routed as L-shapes with
/// congestion-aware orientation choice; overflowed regions are repaired by
/// rip-up and bounded A* maze re-routing with congestion cost (a compact
/// PathFinder-style negotiation).

#include <vector>

#include "netlist/netlist.hpp"
#include "place/placement.hpp"

namespace vpga::route {

struct RouterOptions {
  /// Routing tracks per grid-edge per direction (upper-metal abundance in a
  /// VPGA means this is rarely the limit; congestion still shapes paths).
  int capacity_per_edge = 24;
  int ripup_iterations = 2;
};

struct RoutingResult {
  int grid_w = 0;
  int grid_h = 0;
  double tile_um = 0.0;
  double total_wirelength_um = 0.0;
  /// Routed length per net, indexed by driver node id (0 for netless nodes).
  std::vector<double> net_length_um;
  /// Edges whose usage exceeds capacity after negotiation.
  int overflow_edges = 0;
  /// Peak edge congestion (usage / capacity).
  double peak_congestion = 0.0;
};

/// Routes every net of the placed netlist on a grid of the given pitch.
RoutingResult route(const netlist::Netlist& nl, const place::Placement& placed,
                    double tile_um, const RouterOptions& opts = {});

}  // namespace vpga::route
