#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "common/assert.hpp"
#include "obs/obs.hpp"

namespace vpga::route {
namespace {

using netlist::Netlist;
using netlist::NodeId;

/// Edge-usage grid: horizontal edges (x,y)->(x+1,y) and vertical edges.
struct UsageGrid {
  int w, h;
  std::vector<int> horiz;  // (w-1) * h
  std::vector<int> vert;   // w * (h-1)

  UsageGrid(int w_, int h_)
      : w(w_), h(h_), horiz(static_cast<std::size_t>(std::max(0, w - 1)) * h, 0),
        vert(static_cast<std::size_t>(w) * std::max(0, h - 1), 0) {}

  int& h_edge(int x, int y) { return horiz[static_cast<std::size_t>(y) * (w - 1) + x]; }
  int& v_edge(int x, int y) { return vert[static_cast<std::size_t>(y) * w + x]; }
};

struct TwoPin {
  std::uint32_t driver;
  int x0, y0, x1, y1;
};

/// Applies an L-route (x-first or y-first) to the usage grid; returns the
/// maximum edge usage seen (for orientation choice) without double-walking.
int walk_l(UsageGrid& g, const TwoPin& c, bool x_first, int delta) {
  int peak = 0;
  auto seg_h = [&](int xa, int xb, int y) {
    for (int x = std::min(xa, xb); x < std::max(xa, xb); ++x) {
      auto& u = g.h_edge(x, y);
      u += delta;
      peak = std::max(peak, u);
    }
  };
  auto seg_v = [&](int ya, int yb, int x) {
    for (int y = std::min(ya, yb); y < std::max(ya, yb); ++y) {
      auto& u = g.v_edge(x, y);
      u += delta;
      peak = std::max(peak, u);
    }
  };
  if (x_first) {
    seg_h(c.x0, c.x1, c.y0);
    seg_v(c.y0, c.y1, c.x1);
  } else {
    seg_v(c.y0, c.y1, c.x0);
    seg_h(c.x0, c.x1, c.y1);
  }
  return peak;
}

/// Probes the max usage an L-route would see (delta = 0 walk).
int probe_l(UsageGrid& g, const TwoPin& c, bool x_first) {
  int peak = 0;
  auto seg_h = [&](int xa, int xb, int y) {
    for (int x = std::min(xa, xb); x < std::max(xa, xb); ++x)
      peak = std::max(peak, g.h_edge(x, y));
  };
  auto seg_v = [&](int ya, int yb, int x) {
    for (int y = std::min(ya, yb); y < std::max(ya, yb); ++y)
      peak = std::max(peak, g.v_edge(x, y));
  };
  if (x_first) {
    seg_h(c.x0, c.x1, c.y0);
    seg_v(c.y0, c.y1, c.x1);
  } else {
    seg_v(c.y0, c.y1, c.x0);
    seg_h(c.x0, c.x1, c.y1);
  }
  return peak;
}

/// Congestion-aware maze route (Dijkstra over grid edges) for connections
/// the L-shapes cannot place without overflow. Edge cost: 1 + quadratic
/// penalty above capacity. Returns the path as a node sequence and applies
/// usage; returns the routed length in edges.
int maze_route(UsageGrid& g, const TwoPin& c, int capacity) {
  const int w = g.w, h = g.h;
  const auto idx = [&](int x, int y) { return y * w + x; };
  const int n = w * h;
  std::vector<double> dist(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::infinity());
  std::vector<int> prev(static_cast<std::size_t>(n), -1);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  const int src = idx(c.x0, c.y0), dst = idx(c.x1, c.y1);
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  auto edge_cost = [&](int usage) {
    const int over = usage + 1 - capacity;
    return 1.0 + (over > 0 ? 4.0 * over * over : 0.0);
  };
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (v == dst) break;
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    const int x = v % w, y = v / w;
    const int dx[4] = {1, -1, 0, 0}, dy[4] = {0, 0, 1, -1};
    for (int k = 0; k < 4; ++k) {
      const int nx = x + dx[k], ny = y + dy[k];
      if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
      const int usage = dx[k] != 0 ? g.h_edge(std::min(x, nx), y) : g.v_edge(x, std::min(y, ny));
      const double nd = d + edge_cost(usage);
      const int u = idx(nx, ny);
      if (nd < dist[static_cast<std::size_t>(u)]) {
        dist[static_cast<std::size_t>(u)] = nd;
        prev[static_cast<std::size_t>(u)] = v;
        heap.emplace(nd, u);
      }
    }
  }
  if (prev[static_cast<std::size_t>(dst)] < 0 && src != dst) return -1;
  // Walk back, applying usage.
  int edges = 0;
  for (int v = dst; v != src;) {
    const int p = prev[static_cast<std::size_t>(v)];
    const int x0 = p % w, y0 = p / w, x1 = v % w, y1 = v / w;
    if (y0 == y1) ++g.h_edge(std::min(x0, x1), y0);
    else ++g.v_edge(x0, std::min(y0, y1));
    ++edges;
    v = p;
  }
  return edges;
}

}  // namespace

RoutingResult route(const Netlist& nl, const place::Placement& placed, double tile_um,
                    const RouterOptions& opts) {
  RoutingResult r;
  VPGA_ASSERT(tile_um > 0.0);
  r.tile_um = tile_um;
  r.grid_w = std::max(2, static_cast<int>(std::ceil(placed.width_um / tile_um)) + 1);
  r.grid_h = std::max(2, static_cast<int>(std::ceil(placed.height_um / tile_um)) + 1);
  r.net_length_um.assign(nl.num_nodes(), 0.0);

  auto gx = [&](double x) { return std::clamp(static_cast<int>(x / tile_um), 0, r.grid_w - 1); };
  auto gy = [&](double y) { return std::clamp(static_cast<int>(y / tile_um), 0, r.grid_h - 1); };

  // Net decomposition: minimum spanning tree over {driver, sinks} (Prim,
  // Manhattan metric) — close to a Steiner topology for the small post-
  // buffering fanouts and far shorter than a star for multi-sink nets.
  std::optional<obs::Span> decompose_span(std::in_place, "route.decompose");
  std::vector<std::vector<std::uint32_t>> sinks(nl.num_nodes());
  for (NodeId id : nl.all_nodes()) {
    for (NodeId fi : nl.fanins(id))
      if (fi.valid()) sinks[fi.index()].push_back(id.value());
  }
  std::vector<TwoPin> pins;
  std::size_t total_sinks = 0;
  for (const auto& net : sinks) total_sinks += net.size();
  pins.reserve(total_sinks);  // one two-pin connection per MST edge
  // Per-net Prim scratch, hoisted out of the net loop and sized for the
  // largest terminal set up front.
  std::size_t max_terms = 0;
  for (const auto& net : sinks) max_terms = std::max(max_terms, net.size() + 1);
  std::vector<std::pair<int, int>> pts;
  pts.reserve(max_terms);
  std::vector<char> in_tree;
  std::vector<int> best_dist, best_from;
  for (NodeId id : nl.all_nodes()) {
    const auto& net = sinks[id.index()];
    if (net.empty()) continue;
    // Terminal grid coordinates: driver first.
    pts.clear();
    pts.emplace_back(gx(placed.pos[id.index()].x), gy(placed.pos[id.index()].y));
    for (auto s : net) pts.emplace_back(gx(placed.pos[s].x), gy(placed.pos[s].y));
    // Prim's MST from the driver.
    in_tree.assign(pts.size(), 0);
    best_dist.assign(pts.size(), 1 << 29);
    best_from.assign(pts.size(), 0);
    in_tree[0] = 1;
    for (std::size_t k = 0; k < pts.size(); ++k) {
      if (!in_tree[k]) {
        best_dist[k] = std::abs(pts[k].first - pts[0].first) +
                       std::abs(pts[k].second - pts[0].second);
      }
    }
    for (std::size_t added = 1; added < pts.size(); ++added) {
      std::size_t pick = 0;
      int pick_dist = 1 << 30;
      for (std::size_t k = 1; k < pts.size(); ++k)
        if (!in_tree[k] && best_dist[k] < pick_dist) {
          pick = k;
          pick_dist = best_dist[k];
        }
      in_tree[pick] = 1;
      TwoPin c;
      c.driver = id.value();
      c.x0 = pts[static_cast<std::size_t>(best_from[pick])].first;
      c.y0 = pts[static_cast<std::size_t>(best_from[pick])].second;
      c.x1 = pts[pick].first;
      c.y1 = pts[pick].second;
      pins.push_back(c);
      for (std::size_t k = 1; k < pts.size(); ++k) {
        if (in_tree[k]) continue;
        const int d = std::abs(pts[k].first - pts[pick].first) +
                      std::abs(pts[k].second - pts[pick].second);
        if (d < best_dist[k]) {
          best_dist[k] = d;
          best_from[k] = static_cast<int>(pick);
        }
      }
    }
  }
  // Longer connections first: they have the least flexibility.
  std::sort(pins.begin(), pins.end(), [](const TwoPin& a, const TwoPin& b) {
    return std::abs(a.x1 - a.x0) + std::abs(a.y1 - a.y0) >
           std::abs(b.x1 - b.x0) + std::abs(b.y1 - b.y0);
  });
  decompose_span.reset();
  long long nets = 0;
  for (const auto& net : sinks) nets += net.empty() ? 0 : 1;
  obs::count("route.nets", nets);
  obs::count("route.connections", static_cast<long long>(pins.size()));

  UsageGrid grid(r.grid_w, r.grid_h);
  std::vector<char> x_first(pins.size(), 1);
  {
    const obs::Span initial_span("route.initial");
    for (std::size_t i = 0; i < pins.size(); ++i) {
      const int px = probe_l(grid, pins[i], true);
      const int py = probe_l(grid, pins[i], false);
      x_first[i] = px <= py ? 1 : 0;
      walk_l(grid, pins[i], x_first[i] != 0, +1);
    }
  }

  // Negotiation: rip up connections through overloaded edges and re-choose
  // the orientation under the updated congestion picture.
  {
    const obs::Span negotiate_span("route.negotiate");
    long long ripups = 0;  // counted once below
    for (int iter = 0; iter < opts.ripup_iterations; ++iter) {
      bool any = false;
      for (std::size_t i = 0; i < pins.size(); ++i) {
        const int current = probe_l(grid, pins[i], x_first[i] != 0);
        if (current <= opts.capacity_per_edge) continue;
        ++ripups;
        walk_l(grid, pins[i], x_first[i] != 0, -1);
        const int px = probe_l(grid, pins[i], true);
        const int py = probe_l(grid, pins[i], false);
        const char nf = px <= py ? 1 : 0;
        any = any || nf != x_first[i];
        x_first[i] = nf;
        walk_l(grid, pins[i], x_first[i] != 0, +1);
      }
      if (!any) break;
    }
    obs::count("route.ripups", ripups);
  }

  // Final repair: connections still riding overloaded edges abandon their
  // L-shape for a congestion-priced maze detour.
  std::vector<int> edges_of(pins.size());
  for (std::size_t i = 0; i < pins.size(); ++i)
    edges_of[i] = std::abs(pins[i].x1 - pins[i].x0) + std::abs(pins[i].y1 - pins[i].y0);
  if (opts.ripup_iterations > 0) {
    const obs::Span repair_span("route.maze_repair");
    long long maze_routes = 0;  // counted once below
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (probe_l(grid, pins[i], x_first[i] != 0) <= opts.capacity_per_edge) continue;
      walk_l(grid, pins[i], x_first[i] != 0, -1);
      ++maze_routes;
      const int detour = maze_route(grid, pins[i], opts.capacity_per_edge);
      if (detour >= 0) {
        edges_of[i] = detour;
      } else {
        walk_l(grid, pins[i], x_first[i] != 0, +1);  // restore; keep the L
      }
    }
    obs::count("route.maze_routes", maze_routes);
  }

  // Statistics and per-net lengths.
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const double len = edges_of[i] * tile_um;
    r.net_length_um[pins[i].driver] += len;
    r.total_wirelength_um += len;
  }
  int overflow = 0;
  int peak = 0;
  for (int u : grid.horiz) {
    peak = std::max(peak, u);
    overflow += u > opts.capacity_per_edge ? 1 : 0;
  }
  for (int u : grid.vert) {
    peak = std::max(peak, u);
    overflow += u > opts.capacity_per_edge ? 1 : 0;
  }
  r.overflow_edges = overflow;
  r.peak_congestion = static_cast<double>(peak) / std::max(1, opts.capacity_per_edge);
  obs::count("route.overflow_edges", overflow);
  obs::gauge("route.peak_congestion", r.peak_congestion);
  return r;
}

}  // namespace vpga::route
