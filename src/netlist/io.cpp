#include "netlist/io.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace vpga::netlist {
namespace {

const char* cell_token(library::CellKind k) { return library::to_string(k); }

bool parse_cell(const std::string& s, library::CellKind& out) {
  for (int i = 0; i < library::kNumCellKinds; ++i) {
    const auto k = static_cast<library::CellKind>(i);
    if (s == library::to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

void write_netlist(std::ostream& os, const Netlist& nl) {
  os << "vpga-netlist 1\n";
  if (!nl.name().empty()) os << "name " << nl.name() << "\n";
  for (NodeId id : nl.all_nodes()) {
    const Node& n = nl.node(id);
    const std::string& name = nl.name_of(id);
    os << "node " << id.value() << ' ';
    switch (n.type) {
      case NodeType::kInput:
        os << "input " << name;
        break;
      case NodeType::kConst:
        os << "const " << (n.func.bits() & 1);
        break;
      case NodeType::kOutput:
        os << "output " << nl.fanin(id, 0).value() << ' ' << name;
        break;
      case NodeType::kDff: {
        const NodeId d = nl.fanin(id, 0);
        os << "dff " << (d.valid() ? static_cast<long long>(d.value()) : -1LL);
        if (!name.empty()) os << " name=" << name;
        break;
      }
      case NodeType::kComb: {
        os << "comb " << n.func.num_vars() << ' ' << std::hex << n.func.bits() << std::dec;
        for (NodeId fi : nl.fanins(id)) os << ' ' << fi.value();
        if (n.cell) os << " cell=" << cell_token(*n.cell);
        if (n.has_config()) os << " config=" << static_cast<int>(n.config_tag);
        if (n.in_macro()) os << " macro=" << n.macro_rep.value();
        if (!name.empty()) os << " name=" << name;
        break;
      }
    }
    os << '\n';
  }
  os << "end\n";
}

bool save_netlist(const std::string& path, const Netlist& nl) {
  std::ofstream os(path);
  if (!os) return false;
  write_netlist(os, nl);
  return static_cast<bool>(os);
}

ParseResult read_netlist(std::istream& is) {
  ParseResult result;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    result.ok = false;
    result.error = "line " + std::to_string(lineno) + ": " + msg;
    return result;
  };

  if (!std::getline(is, line) || line != "vpga-netlist 1") {
    lineno = 1;
    return fail("missing 'vpga-netlist 1' header");
  }
  lineno = 1;

  Netlist nl;
  bool saw_end = false;
  // Deferred fixups: DFF D-pins may reference later nodes.
  std::vector<std::pair<NodeId, std::uint32_t>> dff_fixups;
  dff_fixups.reserve(64);
  // Scratch reused across node lines (fanin lists are tiny but frequent).
  std::vector<NodeId> fanins;
  fanins.reserve(logic::TruthTable::kMaxVars);

  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "name") {
      std::string nm;
      ls >> nm;
      nl = Netlist(nm);
      continue;
    }
    if (kw == "end") {
      saw_end = true;
      break;
    }
    if (kw != "node") return fail("expected 'node', 'name' or 'end'");

    std::uint32_t id;
    std::string type;
    if (!(ls >> id >> type)) return fail("malformed node line");
    if (id != nl.num_nodes())
      return fail("node ids must be dense and ordered (got " + std::to_string(id) + ")");

    if (type == "input") {
      std::string nm;
      ls >> nm;
      nl.add_input(nm);
    } else if (type == "const") {
      int v;
      if (!(ls >> v) || (v != 0 && v != 1)) return fail("const needs 0 or 1");
      nl.add_constant(v == 1);
    } else if (type == "output") {
      std::uint32_t driver;
      std::string nm;
      if (!(ls >> driver >> nm)) return fail("output needs driver and name");
      if (driver >= id) return fail("output driver must be an earlier node");
      nl.add_output(NodeId(driver), nm);
    } else if (type == "dff") {
      long long d;
      if (!(ls >> d)) return fail("dff needs a D id (or -1)");
      const NodeId ff = nl.add_dff(NodeId{});
      if (d >= 0) dff_fixups.emplace_back(ff, static_cast<std::uint32_t>(d));
      std::string attr;
      while (ls >> attr)
        if (attr.rfind("name=", 0) == 0) nl.set_name(ff, attr.substr(5));
    } else if (type == "comb") {
      int nvars;
      std::string bits_hex;
      if (!(ls >> nvars >> bits_hex) || nvars < 0 || nvars > logic::TruthTable::kMaxVars)
        return fail("comb needs arity and hex truth table");
      std::uint64_t bits = 0;
      try {
        bits = std::stoull(bits_hex, nullptr, 16);
      } catch (...) {
        return fail("bad truth table '" + bits_hex + "'");
      }
      fanins.clear();
      for (int i = 0; i < nvars; ++i) {
        std::uint32_t fi;
        if (!(ls >> fi)) return fail("comb expects " + std::to_string(nvars) + " fanins");
        if (fi >= id) return fail("comb fanins must be earlier nodes");
        fanins.emplace_back(fi);
      }
      const NodeId c = nl.add_comb(logic::TruthTable(nvars, bits), fanins);
      std::string attr;
      while (ls >> attr) {
        if (attr.rfind("cell=", 0) == 0) {
          library::CellKind k;
          if (!parse_cell(attr.substr(5), k)) return fail("unknown cell '" + attr + "'");
          nl.node(c).cell = k;
        } else if (attr.rfind("config=", 0) == 0) {
          nl.node(c).config_tag = static_cast<std::uint8_t>(std::stoi(attr.substr(7)));
        } else if (attr.rfind("macro=", 0) == 0) {
          nl.node(c).macro_rep = NodeId(static_cast<std::uint32_t>(std::stoul(attr.substr(6))));
        } else if (attr.rfind("name=", 0) == 0) {
          nl.set_name(c, attr.substr(5));
        } else {
          return fail("unknown attribute '" + attr + "'");
        }
      }
    } else {
      return fail("unknown node type '" + type + "'");
    }
  }
  if (!saw_end) return fail("missing 'end'");

  for (const auto& [ff, d] : dff_fixups) {
    if (d >= nl.num_nodes()) return fail("dff D id out of range");
    nl.set_dff_input(ff, NodeId(d));
  }
  const auto check = nl.check();
  if (!check.ok) return fail("netlist check failed: " + check.message);
  result.ok = true;
  result.netlist = std::move(nl);
  return result;
}

ParseResult load_netlist(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    ParseResult r;
    r.error = "cannot open " + path;
    return r;
  }
  return read_netlist(is);
}

}  // namespace vpga::netlist
