#pragma once
/// \file cone.hpp
/// Combinational cone extraction for the exact-equivalence checker.
///
/// A check point in CEC is a driver node (an output's fanin or a DFF's D
/// fanin). Its *cone* is the transitive combinational fanin up to the
/// sequential/primary boundary: primary inputs and DFF Q pins are the cone's
/// leaves, constants fold through. `cone_support` reports the leaves as
/// indices into the owning netlist's `inputs()` / `dffs()` vectors — index
/// space, not NodeId space, so supports are directly comparable between the
/// golden and revised netlists of a miter. `extract_cone` then materializes
/// the cone as a tiny standalone netlist whose primary inputs are the given
/// support in [inputs..., states...] order, which is what the truth-table and
/// exhaustive-simulation tiers consume.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace vpga::netlist {

/// Leaves and interior of one driver cone.
struct ConeSupport {
  /// Indices into nl.inputs() this cone reads, ascending.
  std::vector<std::uint32_t> inputs;
  /// Indices into nl.dffs() whose Q pin this cone reads, ascending.
  std::vector<std::uint32_t> states;
  /// Number of combinational nodes inside the cone (size signal for tier
  /// selection; constants and leaves excluded).
  std::size_t comb_nodes = 0;

  [[nodiscard]] std::size_t num_leaves() const { return inputs.size() + states.size(); }
};

/// Computes the support of the cone rooted at `root` (any non-output node;
/// for an output or DFF pass its driver). Iterative, linear in cone size.
[[nodiscard]] ConeSupport cone_support(const Netlist& nl, NodeId root);

/// Copies the cone rooted at `root` into a fresh netlist whose inputs are
/// exactly `support` in [inputs..., states...] order (DFF Q leaves become
/// primary inputs of the extract). The extract has one output driven by the
/// copied root. `support` must cover the cone (it may be wider — extra
/// leaves become unused inputs, which is how CEC aligns the golden and
/// revised cones of one miter onto a shared variable order).
[[nodiscard]] Netlist extract_cone(const Netlist& nl, NodeId root, const ConeSupport& support);

}  // namespace vpga::netlist
