#include "netlist/cone.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace vpga::netlist {

namespace {

/// Position of `id` in an ascending NodeId vector (inputs()/dffs() are in
/// creation order, so binary search applies).
std::uint32_t index_in(const std::vector<NodeId>& ids, NodeId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id,
                                   [](NodeId a, NodeId b) { return a.index() < b.index(); });
  VPGA_ASSERT(it != ids.end() && *it == id);
  return static_cast<std::uint32_t>(it - ids.begin());
}

}  // namespace

ConeSupport cone_support(const Netlist& nl, NodeId root) {
  ConeSupport s;
  std::vector<std::uint8_t> visited(nl.num_nodes(), 0);
  std::vector<NodeId> stack;
  stack.reserve(64);
  stack.push_back(root);
  visited[root.index()] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& n = nl.node(id);
    switch (n.type) {
      case NodeType::kInput:
        s.inputs.push_back(index_in(nl.inputs(), id));
        break;
      case NodeType::kDff:
        s.states.push_back(index_in(nl.dffs(), id));
        break;
      case NodeType::kConst:
        break;
      case NodeType::kComb: {
        ++s.comb_nodes;
        for (const NodeId fi : nl.fanins(id)) {
          if (visited[fi.index()] == 0) {
            visited[fi.index()] = 1;
            stack.push_back(fi);
          }
        }
        break;
      }
      case NodeType::kOutput:
        VPGA_ASSERT(false && "cone traversal must start below the output shell");
        break;
    }
  }
  std::sort(s.inputs.begin(), s.inputs.end());
  std::sort(s.states.begin(), s.states.end());
  return s;
}

Netlist extract_cone(const Netlist& nl, NodeId root, const ConeSupport& support) {
  Netlist out(nl.name() + ".cone");
  std::vector<NodeId> copied(nl.num_nodes());  // default: invalid
  // The extract's primary inputs are the support, inputs first then states,
  // both ascending — the shared variable order both sides of a miter use.
  for (const std::uint32_t idx : support.inputs) {
    const NodeId orig = nl.inputs()[idx];
    copied[orig.index()] = out.add_input(nl.name_of(orig));
  }
  for (const std::uint32_t idx : support.states) {
    const NodeId orig = nl.dffs()[idx];
    copied[orig.index()] = out.add_input(nl.name_of(orig));
  }

  std::vector<NodeId> stack;
  stack.reserve(64);
  std::vector<NodeId> fanin_buf;
  fanin_buf.reserve(8);
  stack.push_back(root);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (copied[id.index()].valid()) {
      stack.pop_back();
      continue;
    }
    const Node& n = nl.node(id);
    if (n.type == NodeType::kConst) {
      copied[id.index()] = out.add_constant(n.func.eval(0));
      stack.pop_back();
      continue;
    }
    VPGA_ASSERT(n.type == NodeType::kComb && "cone leaf missing from the given support");
    bool ready = true;
    for (const NodeId fi : nl.fanins(id)) {
      if (!copied[fi.index()].valid()) {
        const Node& fn = nl.node(fi);
        if (fn.type == NodeType::kConst) {
          copied[fi.index()] = out.add_constant(fn.func.eval(0));
        } else {
          stack.push_back(fi);
          ready = false;
        }
      }
    }
    if (!ready) continue;
    fanin_buf.clear();
    for (const NodeId fi : nl.fanins(id)) fanin_buf.push_back(copied[fi.index()]);
    copied[id.index()] = out.add_comb(n.func, fanin_buf, nl.name_of(id));
    stack.pop_back();
  }
  out.add_output(copied[root.index()], "cone_out");
  return out;
}

}  // namespace vpga::netlist
