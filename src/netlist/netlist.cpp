#include "netlist/netlist.hpp"

#include <algorithm>
#include <array>

#include "common/assert.hpp"

namespace vpga::netlist {

using logic::TruthTable;

Netlist::Netlist() { names_.emplace_back(); }

Netlist::Netlist(std::string name) : name_(std::move(name)) { names_.emplace_back(); }

// The analysis cache holds a mutex, so the compiler-generated copy/move
// operations are deleted; copy the data members and start the destination
// with a cold cache (cache contents are derivable, never copied).
Netlist::Netlist(const Netlist& other)
    : name_(other.name_),
      nodes_(other.nodes_),
      fanin_pool_(other.fanin_pool_),
      names_(other.names_),
      inputs_(other.inputs_),
      outputs_(other.outputs_),
      dffs_(other.dffs_) {}

Netlist::Netlist(Netlist&& other) noexcept
    : name_(std::move(other.name_)),
      nodes_(std::move(other.nodes_)),
      fanin_pool_(std::move(other.fanin_pool_)),
      names_(std::move(other.names_)),
      inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)),
      dffs_(std::move(other.dffs_)) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  nodes_ = other.nodes_;
  fanin_pool_ = other.fanin_pool_;
  names_ = other.names_;
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  dffs_ = other.dffs_;
  invalidate_analysis();
  return *this;
}

Netlist& Netlist::operator=(Netlist&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  nodes_ = std::move(other.nodes_);
  fanin_pool_ = std::move(other.fanin_pool_);
  names_ = std::move(other.names_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  dffs_ = std::move(other.dffs_);
  invalidate_analysis();
  return *this;
}

std::uint32_t Netlist::intern_name(std::string_view name) {
  if (name.empty()) return 0;
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void Netlist::invalidate_analysis() {
  // Flags only — the cached vectors keep their capacity for the refill.
  const std::lock_guard<std::mutex> lock(cache_.mutex);
  cache_.topo_valid = false;
  cache_.fanout_valid = false;
}

NodeId Netlist::push(Node n, std::span<const NodeId> fanins, std::string_view name) {
  VPGA_ASSERT_MSG(fanins.size() <= 0xFF, "fanin count exceeds the CSR slice width");
  // Stage through a stack buffer: `fanins` may view this very pool (a caller
  // forwarding another node's fanins), and growing the pool would invalidate it.
  std::array<NodeId, 0xFF> local;
  std::copy(fanins.begin(), fanins.end(), local.begin());
  n.fanin_offset = static_cast<std::uint32_t>(fanin_pool_.size());
  n.fanin_count = static_cast<std::uint8_t>(fanins.size());
  fanin_pool_.insert(fanin_pool_.end(), local.begin(), local.begin() + fanins.size());
  n.name_id = intern_name(name);
  nodes_.push_back(std::move(n));
  invalidate_analysis();
  return NodeId(nodes_.size() - 1);
}

NodeId Netlist::add_input(std::string_view name) {
  Node n;
  n.type = NodeType::kInput;
  const NodeId id = push(std::move(n), {}, name);
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_output(NodeId driver, std::string_view name) {
  VPGA_ASSERT(driver.valid());
  Node n;
  n.type = NodeType::kOutput;
  const NodeId id = push(std::move(n), {{driver}}, name);
  outputs_.push_back(id);
  return id;
}

NodeId Netlist::add_constant(bool value) {
  Node n;
  n.type = NodeType::kConst;
  n.func = TruthTable(0, value ? 1 : 0);
  return push(std::move(n), {}, {});
}

NodeId Netlist::add_comb(const TruthTable& f, std::span<const NodeId> fanins,
                         std::string_view name) {
  VPGA_ASSERT_MSG(static_cast<std::size_t>(f.num_vars()) == fanins.size(),
                  "truth table arity must equal fanin count");
  for (NodeId fi : fanins) VPGA_ASSERT(fi.valid() && fi.index() < nodes_.size());
  Node n;
  n.type = NodeType::kComb;
  n.func = f;
  return push(std::move(n), fanins, name);
}

NodeId Netlist::add_dff(NodeId d, std::string_view name) {
  Node n;
  n.type = NodeType::kDff;
  const NodeId id = push(std::move(n), {{d}}, name);
  dffs_.push_back(id);
  return id;
}

void Netlist::set_dff_input(NodeId dff, NodeId d) {
  VPGA_ASSERT(node(dff).type == NodeType::kDff);
  VPGA_ASSERT(d.valid());
  fanin_pool_[nodes_[dff.index()].fanin_offset] = d;
  invalidate_analysis();
}

void Netlist::set_fanin(NodeId id, std::size_t k, NodeId fi) {
  const Node& n = nodes_[id.index()];
  VPGA_ASSERT(k < n.fanin_count);
  fanin_pool_[n.fanin_offset + k] = fi;
  invalidate_analysis();
}

void Netlist::replace_fanins(NodeId id, std::span<const NodeId> fanins) {
  VPGA_ASSERT_MSG(fanins.size() <= 0xFF, "fanin count exceeds the CSR slice width");
  // Copy first: `fanins` may alias this node's current slice in the pool
  // (e.g. a caller editing a local copy of its own span), and growth below
  // reallocates the pool.
  std::array<NodeId, 0xFF> local;
  std::copy(fanins.begin(), fanins.end(), local.begin());
  Node& n = nodes_[id.index()];
  if (fanins.size() <= n.fanin_count) {
    std::copy_n(local.begin(), fanins.size(), fanin_pool_.begin() + n.fanin_offset);
  } else {
    n.fanin_offset = static_cast<std::uint32_t>(fanin_pool_.size());
    fanin_pool_.insert(fanin_pool_.end(), local.begin(), local.begin() + fanins.size());
  }
  n.fanin_count = static_cast<std::uint8_t>(fanins.size());
  invalidate_analysis();
}

void Netlist::set_name(NodeId id, std::string_view name) {
  nodes_[id.index()].name_id = intern_name(name);
}

NodeId Netlist::add_not(NodeId a) { return add_comb(TruthTable(1, 0b01), {a}); }
NodeId Netlist::add_buf(NodeId a) { return add_comb(TruthTable(1, 0b10), {a}); }
NodeId Netlist::add_and(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b1000), {a, b}); }
NodeId Netlist::add_or(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b1110), {a, b}); }
NodeId Netlist::add_xor(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b0110), {a, b}); }
NodeId Netlist::add_nand(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b0111), {a, b}); }
NodeId Netlist::add_nor(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b0001), {a, b}); }
NodeId Netlist::add_xnor(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b1001), {a, b}); }

NodeId Netlist::add_mux(NodeId s, NodeId d0, NodeId d1) {
  // Variable order (x0=s, x1=d0, x2=d1): f = s' d0 + s d1.
  const auto s_t = TruthTable::var(3, 0);
  const auto d0_t = TruthTable::var(3, 1);
  const auto d1_t = TruthTable::var(3, 2);
  return add_comb((~s_t & d0_t) | (s_t & d1_t), {s, d0, d1});
}

NodeId Netlist::add_xor3(NodeId a, NodeId b, NodeId c) {
  return add_comb(logic::tt3::xor3(), {a, b, c});
}

NodeId Netlist::add_maj(NodeId a, NodeId b, NodeId c) {
  return add_comb(logic::tt3::maj3(), {a, b, c});
}

void Netlist::compute_topo(std::vector<NodeId>& out) const {
  // Kahn's algorithm over the combinational dependency graph. DFF outputs,
  // inputs and constants are sources; a DFF's D pin is a sink, so DFF fanin
  // edges do not propagate ordering constraints.
  // Callers hold cache_.mutex, so the cache's scratch vectors are ours.
  auto& pending = cache_.pending;
  pending.assign(nodes_.size(), 0);
  std::size_t expected = 0;
  std::size_t comb_edges = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    ++expected;
    for (NodeId fi : fanins(NodeId(i)))
      if (nodes_[fi.index()].type == NodeType::kComb) {
        ++pending[i];
        ++comb_edges;
      }
  }
  // Fanout adjacency restricted to comb/output sinks, in CSR form.
  auto& fanout_offset = cache_.fanout_offset;
  fanout_offset.assign(nodes_.size() + 1, 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    for (NodeId fi : fanins(NodeId(i)))
      if (nodes_[fi.index()].type == NodeType::kComb) ++fanout_offset[fi.index() + 1];
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) fanout_offset[i + 1] += fanout_offset[i];
  auto& fanout_pool = cache_.fanout_pool;
  fanout_pool.assign(comb_edges, 0);
  auto& cursor = cache_.cursor;
  cursor.assign(fanout_offset.begin(), fanout_offset.end() - 1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    for (NodeId fi : fanins(NodeId(i)))
      if (nodes_[fi.index()].type == NodeType::kComb)
        fanout_pool[cursor[fi.index()]++] = static_cast<std::uint32_t>(i);
  }
  out.clear();
  out.reserve(expected);
  auto& ready = cache_.ready;
  ready.clear();
  ready.reserve(expected);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeType t = nodes_[i].type;
    if ((t == NodeType::kComb || t == NodeType::kOutput) && pending[i] == 0)
      ready.push_back(static_cast<std::uint32_t>(i));
  }
  while (!ready.empty()) {
    const std::uint32_t i = ready.back();
    ready.pop_back();
    out.emplace_back(i);
    for (std::uint32_t e = fanout_offset[i]; e < fanout_offset[i + 1]; ++e) {
      const std::uint32_t o = fanout_pool[e];
      if (--pending[o] == 0) ready.push_back(o);
    }
  }
  VPGA_ASSERT_MSG(out.size() == expected, "combinational cycle in netlist");
}

const std::vector<NodeId>& Netlist::topo_order() const {
  const std::lock_guard<std::mutex> lock(cache_.mutex);
  if (!cache_.topo_valid) {
    compute_topo(cache_.topo);
    cache_.topo_valid = true;
  }
  return cache_.topo;
}

const std::vector<int>& Netlist::fanout_counts() const {
  const std::lock_guard<std::mutex> lock(cache_.mutex);
  if (!cache_.fanout_valid) {
    cache_.fanouts.assign(nodes_.size(), 0);
    for (NodeId fi : fanin_pool_)
      if (fi.valid() && fi.index() < nodes_.size()) ++cache_.fanouts[fi.index()];
    cache_.fanout_valid = true;
  }
  return cache_.fanouts;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  for (const Node& n : nodes_) {
    switch (n.type) {
      case NodeType::kInput: ++s.inputs; break;
      case NodeType::kOutput: ++s.outputs; break;
      case NodeType::kDff:
        ++s.dffs;
        s.nand2_equiv += 4.0;
        break;
      case NodeType::kConst: ++s.constants; break;
      case NodeType::kComb: {
        ++s.comb;
        if (n.is_mapped()) {
          s.nand2_equiv += library::CellLibrary::standard().nand2_equivalents(*n.cell);
        } else {
          // Technology-independent weights by support size.
          switch (n.func.support_size()) {
            case 0: break;
            case 1: s.nand2_equiv += 0.5; break;
            case 2: s.nand2_equiv += 1.0; break;
            case 3: s.nand2_equiv += 2.0; break;
            default: s.nand2_equiv += 3.0; break;
          }
        }
        break;
      }
    }
  }
  return s;
}

Netlist::CheckResult Netlist::check() const {
  auto fail = [](std::string msg) { return CheckResult{false, std::move(msg)}; };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (NodeId fi : fanins(NodeId(i))) {
      if (!fi.valid() || fi.index() >= nodes_.size())
        return fail("node " + std::to_string(i) + " has an invalid fanin");
      const NodeType ft = nodes_[fi.index()].type;
      if (ft == NodeType::kOutput)
        return fail("node " + std::to_string(i) + " reads a primary output");
    }
    switch (n.type) {
      case NodeType::kComb:
        if (n.func.num_vars() != n.num_fanins())
          return fail("node " + std::to_string(i) + " arity mismatch");
        break;
      case NodeType::kOutput:
      case NodeType::kDff:
        if (n.num_fanins() != 1)
          return fail("node " + std::to_string(i) + " must have exactly one fanin");
        break;
      case NodeType::kInput:
      case NodeType::kConst:
        if (n.num_fanins() != 0)
          return fail("node " + std::to_string(i) + " must have no fanins");
        break;
    }
  }
  // Cycle check mirrors compute_topo without aborting.
  std::vector<int> pending(nodes_.size(), 0);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    ++expected;
    for (NodeId fi : fanins(NodeId(i)))
      if (nodes_[fi.index()].type == NodeType::kComb) ++pending[i];
  }
  std::vector<std::vector<std::uint32_t>> fanouts(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    for (NodeId fi : fanins(NodeId(i)))
      if (nodes_[fi.index()].type == NodeType::kComb)
        fanouts[fi.index()].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> ready;
  ready.reserve(expected);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeType t = nodes_[i].type;
    if ((t == NodeType::kComb || t == NodeType::kOutput) && pending[i] == 0)
      ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::uint32_t i = ready.back();
    ready.pop_back();
    ++visited;
    for (std::uint32_t o : fanouts[i])
      if (--pending[o] == 0) ready.push_back(o);
  }
  if (visited != expected) return fail("combinational cycle detected");
  return {};
}

}  // namespace vpga::netlist
