#include "netlist/netlist.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace vpga::netlist {

using logic::TruthTable;

NodeId Netlist::push(Node n) {
  nodes_.push_back(std::move(n));
  return NodeId(nodes_.size() - 1);
}

NodeId Netlist::add_input(std::string name) {
  Node n;
  n.type = NodeType::kInput;
  n.name = std::move(name);
  const NodeId id = push(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_output(NodeId driver, std::string name) {
  VPGA_ASSERT(driver.valid());
  Node n;
  n.type = NodeType::kOutput;
  n.fanins = {driver};
  n.name = std::move(name);
  const NodeId id = push(std::move(n));
  outputs_.push_back(id);
  return id;
}

NodeId Netlist::add_constant(bool value) {
  Node n;
  n.type = NodeType::kConst;
  n.func = TruthTable(0, value ? 1 : 0);
  return push(std::move(n));
}

NodeId Netlist::add_comb(const TruthTable& f, std::vector<NodeId> fanins, std::string name) {
  VPGA_ASSERT_MSG(static_cast<std::size_t>(f.num_vars()) == fanins.size(),
                  "truth table arity must equal fanin count");
  for (NodeId fi : fanins) VPGA_ASSERT(fi.valid() && fi.index() < nodes_.size());
  Node n;
  n.type = NodeType::kComb;
  n.func = f;
  n.fanins = std::move(fanins);
  n.name = std::move(name);
  return push(std::move(n));
}

NodeId Netlist::add_dff(NodeId d, std::string name) {
  Node n;
  n.type = NodeType::kDff;
  n.fanins = {d};
  n.name = std::move(name);
  const NodeId id = push(std::move(n));
  dffs_.push_back(id);
  return id;
}

void Netlist::set_dff_input(NodeId dff, NodeId d) {
  VPGA_ASSERT(node(dff).type == NodeType::kDff);
  VPGA_ASSERT(d.valid());
  node(dff).fanins[0] = d;
}

NodeId Netlist::add_not(NodeId a) { return add_comb(TruthTable(1, 0b01), {a}); }
NodeId Netlist::add_buf(NodeId a) { return add_comb(TruthTable(1, 0b10), {a}); }
NodeId Netlist::add_and(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b1000), {a, b}); }
NodeId Netlist::add_or(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b1110), {a, b}); }
NodeId Netlist::add_xor(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b0110), {a, b}); }
NodeId Netlist::add_nand(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b0111), {a, b}); }
NodeId Netlist::add_nor(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b0001), {a, b}); }
NodeId Netlist::add_xnor(NodeId a, NodeId b) { return add_comb(TruthTable(2, 0b1001), {a, b}); }

NodeId Netlist::add_mux(NodeId s, NodeId d0, NodeId d1) {
  // Variable order (x0=s, x1=d0, x2=d1): f = s' d0 + s d1.
  const auto s_t = TruthTable::var(3, 0);
  const auto d0_t = TruthTable::var(3, 1);
  const auto d1_t = TruthTable::var(3, 2);
  return add_comb((~s_t & d0_t) | (s_t & d1_t), {s, d0, d1});
}

NodeId Netlist::add_xor3(NodeId a, NodeId b, NodeId c) {
  return add_comb(logic::tt3::xor3(), {a, b, c});
}

NodeId Netlist::add_maj(NodeId a, NodeId b, NodeId c) {
  return add_comb(logic::tt3::maj3(), {a, b, c});
}

std::vector<NodeId> Netlist::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<NodeId> Netlist::topo_order() const {
  // Kahn's algorithm over the combinational dependency graph. DFF outputs,
  // inputs and constants are sources; a DFF's D pin is a sink, so DFF fanin
  // edges do not propagate ordering constraints.
  std::vector<int> pending(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    for (NodeId fi : n.fanins) {
      const NodeType ft = nodes_[fi.index()].type;
      if (ft == NodeType::kComb) ++pending[i];
      (void)ft;
    }
  }
  // Fanout adjacency restricted to comb/output sinks.
  std::vector<std::vector<std::uint32_t>> fanouts(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    for (NodeId fi : n.fanins)
      if (nodes_[fi.index()].type == NodeType::kComb)
        fanouts[fi.index()].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<NodeId> order;
  std::vector<std::uint32_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeType t = nodes_[i].type;
    if ((t == NodeType::kComb || t == NodeType::kOutput) && pending[i] == 0)
      ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t expected = 0;
  for (const Node& n : nodes_)
    if (n.type == NodeType::kComb || n.type == NodeType::kOutput) ++expected;
  while (!ready.empty()) {
    const std::uint32_t i = ready.back();
    ready.pop_back();
    order.emplace_back(i);
    for (std::uint32_t o : fanouts[i])
      if (--pending[o] == 0) ready.push_back(o);
  }
  VPGA_ASSERT_MSG(order.size() == expected, "combinational cycle in netlist");
  return order;
}

std::vector<int> Netlist::fanout_counts() const {
  std::vector<int> out(nodes_.size(), 0);
  for (const Node& n : nodes_)
    for (NodeId fi : n.fanins)
      if (fi.valid()) ++out[fi.index()];
  return out;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  for (const Node& n : nodes_) {
    switch (n.type) {
      case NodeType::kInput: ++s.inputs; break;
      case NodeType::kOutput: ++s.outputs; break;
      case NodeType::kDff:
        ++s.dffs;
        s.nand2_equiv += 4.0;
        break;
      case NodeType::kConst: ++s.constants; break;
      case NodeType::kComb: {
        ++s.comb;
        if (n.is_mapped()) {
          s.nand2_equiv += library::CellLibrary::standard().nand2_equivalents(*n.cell);
        } else {
          // Technology-independent weights by support size.
          switch (n.func.support_size()) {
            case 0: break;
            case 1: s.nand2_equiv += 0.5; break;
            case 2: s.nand2_equiv += 1.0; break;
            case 3: s.nand2_equiv += 2.0; break;
            default: s.nand2_equiv += 3.0; break;
          }
        }
        break;
      }
    }
  }
  return s;
}

Netlist::CheckResult Netlist::check() const {
  auto fail = [](std::string msg) { return CheckResult{false, std::move(msg)}; };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (NodeId fi : n.fanins) {
      if (!fi.valid() || fi.index() >= nodes_.size())
        return fail("node " + std::to_string(i) + " has an invalid fanin");
      const NodeType ft = nodes_[fi.index()].type;
      if (ft == NodeType::kOutput)
        return fail("node " + std::to_string(i) + " reads a primary output");
    }
    switch (n.type) {
      case NodeType::kComb:
        if (static_cast<std::size_t>(n.func.num_vars()) != n.fanins.size())
          return fail("node " + std::to_string(i) + " arity mismatch");
        break;
      case NodeType::kOutput:
      case NodeType::kDff:
        if (n.fanins.size() != 1)
          return fail("node " + std::to_string(i) + " must have exactly one fanin");
        break;
      case NodeType::kInput:
      case NodeType::kConst:
        if (!n.fanins.empty())
          return fail("node " + std::to_string(i) + " must have no fanins");
        break;
    }
  }
  // Cycle check mirrors topo_order without aborting.
  std::vector<int> pending(nodes_.size(), 0);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    ++expected;
    for (NodeId fi : n.fanins)
      if (nodes_[fi.index()].type == NodeType::kComb) ++pending[i];
  }
  std::vector<std::vector<std::uint32_t>> fanouts(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::kComb && n.type != NodeType::kOutput) continue;
    for (NodeId fi : n.fanins)
      if (nodes_[fi.index()].type == NodeType::kComb)
        fanouts[fi.index()].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeType t = nodes_[i].type;
    if ((t == NodeType::kComb || t == NodeType::kOutput) && pending[i] == 0)
      ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::uint32_t i = ready.back();
    ready.pop_back();
    ++visited;
    for (std::uint32_t o : fanouts[i])
      if (--pending[o] == 0) ready.push_back(o);
  }
  if (visited != expected) return fail("combinational cycle detected");
  return {};
}

}  // namespace vpga::netlist
