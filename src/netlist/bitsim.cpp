#include "netlist/bitsim.hpp"

#include "common/assert.hpp"

namespace vpga::netlist {

BitSimulator::BitSimulator(const Netlist& nl)
    : nl_(nl), order_(nl.topo_order()), values_(nl.num_nodes(), 0) {
  for (NodeId id : nl.all_nodes()) {
    const Node& n = nl.node(id);
    if (n.type == NodeType::kConst)
      values_[id.index()] = (n.func.bits() & 1) ? ~std::uint64_t{0} : 0;
  }
}

void BitSimulator::set_input(std::size_t i, std::uint64_t patterns) {
  VPGA_ASSERT(i < nl_.inputs().size());
  values_[nl_.inputs()[i].index()] = patterns;
}

void BitSimulator::set_state(std::size_t d, std::uint64_t patterns) {
  VPGA_ASSERT(d < nl_.dffs().size());
  values_[nl_.dffs()[d].index()] = patterns;
}

void BitSimulator::eval() {
  for (NodeId id : order_) {
    const Node& n = nl_.node(id);
    const auto fins = nl_.fanins(id);
    if (n.type == NodeType::kOutput) {
      values_[id.index()] = values_[fins[0].index()];
      continue;
    }
    // Evaluate the truth table bitwise over the fanin words: for each row r
    // of the table, AND together fanin words in the row's polarities and OR
    // into the result when f(r) = 1.
    std::uint64_t out = 0;
    const int rows = n.func.num_rows();
    for (int r = 0; r < rows; ++r) {
      if (!n.func.eval(static_cast<unsigned>(r))) continue;
      std::uint64_t term = ~std::uint64_t{0};
      for (std::size_t k = 0; k < fins.size(); ++k) {
        const std::uint64_t v = values_[fins[k].index()];
        term &= (r >> k) & 1 ? v : ~v;
      }
      out |= term;
    }
    values_[id.index()] = out;
  }
}

std::uint64_t BitSimulator::output(std::size_t i) const {
  VPGA_ASSERT(i < nl_.outputs().size());
  return values_[nl_.outputs()[i].index()];
}

std::uint64_t BitSimulator::next_state(std::size_t d) const {
  VPGA_ASSERT(d < nl_.dffs().size());
  const NodeId din = nl_.fanin(nl_.dffs()[d], 0);
  VPGA_ASSERT(din.valid());
  return values_[din.index()];
}

bool exhaustive_equivalent(const Netlist& a, const Netlist& b, int max_inputs) {
  VPGA_ASSERT_MSG(a.dffs().empty() && b.dffs().empty(),
                  "exhaustive_equivalent is combinational-only");
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  const int n = static_cast<int>(a.inputs().size());
  if (n > max_inputs) return false;

  BitSimulator sa(a), sb(b);
  // Inputs 0..5 cycle within one 64-pattern word; inputs >= 6 come from the
  // block index, so one eval covers 64 assignments.
  static constexpr std::uint64_t kLane[6] = {
      0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
      0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
  const std::uint64_t blocks = n > 6 ? (std::uint64_t{1} << (n - 6)) : 1;
  for (std::uint64_t blk = 0; blk < blocks; ++blk) {
    for (int i = 0; i < n; ++i) {
      const std::uint64_t w =
          i < 6 ? kLane[i] : ((blk >> (i - 6)) & 1 ? ~std::uint64_t{0} : 0);
      sa.set_input(static_cast<std::size_t>(i), w);
      sb.set_input(static_cast<std::size_t>(i), w);
    }
    sa.eval();
    sb.eval();
    for (std::size_t o = 0; o < a.outputs().size(); ++o)
      if (sa.output(o) != sb.output(o)) return false;
  }
  return true;
}

}  // namespace vpga::netlist
