#pragma once
/// \file bitsim.hpp
/// Bit-parallel (64-pattern) simulation and exhaustive equivalence checking.
///
/// Each node value is a 64-bit word holding 64 independent input patterns, so
/// a combinational netlist with n <= ~20 inputs can be checked against a
/// reference *exhaustively* (2^n patterns, 64 at a time) in milliseconds —
/// turning the synthesis pipeline's equivalence tests from sampling into
/// proof for adder/mux-sized cones.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace vpga::netlist {

/// Evaluates 64 input patterns at once through the combinational logic.
/// Sequential netlists are supported: DFF outputs are part of the pattern
/// state you set explicitly (useful for checking next-state functions).
class BitSimulator {
 public:
  explicit BitSimulator(const Netlist& nl);

  /// Sets the 64-pattern word of primary input i.
  void set_input(std::size_t i, std::uint64_t patterns);
  /// Sets the 64-pattern word of DFF d's output (state).
  void set_state(std::size_t d, std::uint64_t patterns);
  /// Propagates through all combinational logic.
  void eval();
  [[nodiscard]] std::uint64_t output(std::size_t i) const;
  [[nodiscard]] std::uint64_t value(NodeId id) const { return values_[id.index()]; }
  /// 64-pattern word of DFF d's next-state (D pin) after eval().
  [[nodiscard]] std::uint64_t next_state(std::size_t d) const;

 private:
  const Netlist& nl_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> values_;
};

/// Exhaustively proves combinational equivalence of two netlists with the
/// same PI/PO interface and no registers. Requires #inputs <= max_inputs
/// (cost 2^n / 64 evaluations); returns false on any mismatch or interface
/// difference. Asserts if either netlist has registers.
bool exhaustive_equivalent(const Netlist& a, const Netlist& b, int max_inputs = 22);

}  // namespace vpga::netlist
