#pragma once
/// \file io.hpp
/// Plain-text structural netlist serialization.
///
/// A small line-oriented format ("vpga-netlist 1") that round-trips every
/// feature of the IR — node types, truth tables, mapping annotations,
/// configuration tags, macro grouping and names — so designs and flow
/// intermediates can be saved, diffed and reloaded:
///
///   vpga-netlist 1
///   name alu8
///   node 0 input a[0]
///   node 1 input a[1]
///   node 2 comb 2 8 0 1 cell=ND3WI config=ND3
///   node 3 dff 2 name=q
///   node 4 output 3 y
///   end
///
/// Node ids are the arena indices and must be dense and in order (fanins may
/// only reference earlier ids, except DFF D-pins which may point forward).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace vpga::netlist {

/// Writes `nl` to the stream in the format above.
void write_netlist(std::ostream& os, const Netlist& nl);
/// Convenience: to a file. Returns false when the file cannot be opened.
bool save_netlist(const std::string& path, const Netlist& nl);

/// Parse result: either a netlist or a located error message.
struct ParseResult {
  bool ok = false;
  Netlist netlist;
  std::string error;  ///< "line N: ..." when !ok
};

/// Reads a netlist from the stream (strict: any malformed line fails).
ParseResult read_netlist(std::istream& is);
/// Convenience: from a file.
ParseResult load_netlist(const std::string& path);

}  // namespace vpga::netlist
