#pragma once
/// \file netlist.hpp
/// Gate-level netlist — the common IR of the whole flow.
///
/// A netlist is an arena of nodes. Combinational nodes compute a truth table
/// over their fanins; DFF nodes hold state (their output is the Q pin, their
/// single fanin the D pin); inputs/outputs/constants are boundary nodes.
/// The same structure carries a design through every stage: the design
/// generators emit generic logic, the technology mapper re-expresses it in
/// restricted-library cells, and the compaction pass re-groups cells into PLB
/// configurations (recorded in an opaque `config_tag` so this substrate does
/// not depend on the architecture layer above it).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "library/cells.hpp"
#include "logic/truth_table.hpp"

namespace vpga::netlist {

struct NodeTag;
/// Handle to a node; a node's output is the (single) net it drives.
using NodeId = common::Id<NodeTag>;

enum class NodeType : std::uint8_t {
  kConst,   ///< constant 0/1 (value in `func` bit 0)
  kInput,   ///< primary input
  kOutput,  ///< primary output (one fanin, no function)
  kComb,    ///< combinational node: func over fanins
  kDff,     ///< D flip-flop: fanin[0] = D, output = Q
};

/// One netlist node.
struct Node {
  static constexpr std::uint8_t kNoConfig = 0xFF;

  NodeType type = NodeType::kComb;
  /// For kComb: the function over `fanins` (func.num_vars() == fanins.size()).
  /// For kConst: bit 0 is the constant's value.
  logic::TruthTable func;
  std::vector<NodeId> fanins;
  std::string name;
  /// Technology mapping result (set by synth::map; absent on generic nodes).
  std::optional<library::CellKind> cell;
  /// PLB configuration (raw core::ConfigKind; set by the compaction pass).
  std::uint8_t config_tag = kNoConfig;
  /// Multi-output macro grouping (e.g. the full-adder configuration, which
  /// produces SUM and COUT from one PLB): all members point at the
  /// representative node; the representative points at itself. Invalid for
  /// ordinary single-output nodes.
  NodeId macro_rep;

  [[nodiscard]] bool is_mapped() const { return cell.has_value(); }
  [[nodiscard]] bool has_config() const { return config_tag != kNoConfig; }
  [[nodiscard]] bool in_macro() const { return macro_rep.valid(); }
};

/// Aggregate size/character statistics.
struct NetlistStats {
  int inputs = 0;
  int outputs = 0;
  int dffs = 0;
  int comb = 0;
  int constants = 0;
  /// Technology-independent size estimate in 2-input-NAND equivalents
  /// (the unit the paper's Table 2 uses for "No. of gates").
  double nand2_equiv = 0.0;
  /// Fraction of logic nodes that are sequential — the property that drives
  /// the paper's Firewire result.
  [[nodiscard]] double sequential_fraction() const {
    const int logic_nodes = dffs + comb;
    return logic_nodes == 0 ? 0.0 : static_cast<double>(dffs) / logic_nodes;
  }
};

/// The netlist arena.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// --- construction ---------------------------------------------------------

  NodeId add_input(std::string name);
  NodeId add_output(NodeId driver, std::string name);
  NodeId add_constant(bool value);
  /// Adds a combinational node; f.num_vars() must equal fanins.size().
  NodeId add_comb(const logic::TruthTable& f, std::vector<NodeId> fanins,
                  std::string name = {});
  /// Adds a DFF. `d` may be invalid and connected later via set_dff_input
  /// (needed for feedback registers).
  NodeId add_dff(NodeId d, std::string name = {});
  void set_dff_input(NodeId dff, NodeId d);

  /// Gate sugar for the design generators (generic, unmapped logic).
  NodeId add_not(NodeId a);
  NodeId add_buf(NodeId a);
  NodeId add_and(NodeId a, NodeId b);
  NodeId add_or(NodeId a, NodeId b);
  NodeId add_xor(NodeId a, NodeId b);
  NodeId add_nand(NodeId a, NodeId b);
  NodeId add_nor(NodeId a, NodeId b);
  NodeId add_xnor(NodeId a, NodeId b);
  /// MUX: s == 0 -> d0, s == 1 -> d1.
  NodeId add_mux(NodeId s, NodeId d0, NodeId d1);
  NodeId add_xor3(NodeId a, NodeId b, NodeId c);
  NodeId add_maj(NodeId a, NodeId b, NodeId c);

  /// --- access ---------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id.index()]; }
  [[nodiscard]] Node& node(NodeId id) { return nodes_[id.index()]; }
  [[nodiscard]] const std::vector<NodeId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<NodeId>& dffs() const { return dffs_; }
  /// Every node id, in creation order.
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

  /// --- analysis ---------------------------------------------------------------

  /// Combinational nodes and outputs in dependency order (inputs, constants
  /// and DFF outputs are sources; DFF D-pins are sinks). Asserts on
  /// combinational cycles.
  [[nodiscard]] std::vector<NodeId> topo_order() const;
  /// fanout[i] = number of fanin references to node i.
  [[nodiscard]] std::vector<int> fanout_counts() const;
  [[nodiscard]] NetlistStats stats() const;

  /// Structural well-formedness: arities match, references valid, outputs
  /// wired, no combinational cycles. Returns an explanatory message on error.
  struct CheckResult {
    bool ok = true;
    std::string message;
  };
  [[nodiscard]] CheckResult check() const;

 private:
  NodeId push(Node n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_, outputs_, dffs_;
};

}  // namespace vpga::netlist
