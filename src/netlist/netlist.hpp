#pragma once
/// \file netlist.hpp
/// Gate-level netlist — the common IR of the whole flow.
///
/// A netlist is an arena of nodes. Combinational nodes compute a truth table
/// over their fanins; DFF nodes hold state (their output is the Q pin, their
/// single fanin the D pin); inputs/outputs/constants are boundary nodes.
/// The same structure carries a design through every stage: the design
/// generators emit generic logic, the technology mapper re-expresses it in
/// restricted-library cells, and the compaction pass re-groups cells into PLB
/// configurations (recorded in an opaque `config_tag` so this substrate does
/// not depend on the architecture layer above it).
///
/// Storage is CSR-style (struct-of-arrays in the VPR idiom): every node's
/// fanin list is a (offset, count) slice of one shared pool, read through
/// `Netlist::fanins(id)` span views, and node names are interned in a string
/// table — a `Node` itself is a small fixed-size record with no per-node heap
/// blocks. Structural analyses (`topo_order`, `fanout_counts`) are memoized
/// and invalidated by the structural mutators (`add_*`, `set_fanin`,
/// `set_dff_input`, `replace_fanins`); tag mutations through `node(id)`
/// (cell, config_tag, macro_rep) do not touch structure and keep the caches.

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/concurrency.hpp"
#include "common/ids.hpp"
#include "library/cells.hpp"
#include "logic/truth_table.hpp"

namespace vpga::netlist {

struct NodeTag;
/// Handle to a node; a node's output is the (single) net it drives.
using NodeId = common::Id<NodeTag>;

enum class NodeType : std::uint8_t {
  kConst,   ///< constant 0/1 (value in `func` bit 0)
  kInput,   ///< primary input
  kOutput,  ///< primary output (one fanin, no function)
  kComb,    ///< combinational node: func over fanins
  kDff,     ///< D flip-flop: fanin[0] = D, output = Q
};

/// One netlist node. Fanins and the name live in the owning Netlist's shared
/// pools; the node stores only the slice coordinates, so the record is small
/// and allocation-free.
struct Node {
  static constexpr std::uint8_t kNoConfig = 0xFF;

  NodeType type = NodeType::kComb;
  /// PLB configuration (raw core::ConfigKind; set by the compaction pass).
  std::uint8_t config_tag = kNoConfig;
  /// Number of fanins (slice length in the owner's fanin pool).
  std::uint8_t fanin_count = 0;
  /// Technology mapping result (set by synth::map; absent on generic nodes).
  std::optional<library::CellKind> cell;
  /// Start of this node's fanin slice in the owner's fanin pool.
  std::uint32_t fanin_offset = 0;
  /// Index into the owner's interned name table (0 = unnamed).
  std::uint32_t name_id = 0;
  /// For kComb: the function over the fanins (func.num_vars() == num_fanins()).
  /// For kConst: bit 0 is the constant's value.
  logic::TruthTable func;
  /// Multi-output macro grouping (e.g. the full-adder configuration, which
  /// produces SUM and COUT from one PLB): all members point at the
  /// representative node; the representative points at itself. Invalid for
  /// ordinary single-output nodes.
  NodeId macro_rep;

  [[nodiscard]] int num_fanins() const { return fanin_count; }
  [[nodiscard]] bool is_mapped() const { return cell.has_value(); }
  [[nodiscard]] bool has_config() const { return config_tag != kNoConfig; }
  [[nodiscard]] bool in_macro() const { return macro_rep.valid(); }
};

/// Lazy view of the dense id range [0, num_nodes) — `all_nodes()` used to
/// materialize this as a fresh vector on every call, which the compaction
/// pricing loop hit six times per round.
class NodeIdRange {
 public:
  class iterator {
   public:
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    constexpr explicit iterator(std::uint32_t i) : i_(i) {}
    constexpr NodeId operator*() const { return NodeId(i_); }
    constexpr iterator& operator++() { ++i_; return *this; }
    constexpr iterator operator++(int) { iterator t = *this; ++i_; return t; }
    friend constexpr bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
    friend constexpr bool operator!=(iterator a, iterator b) { return a.i_ != b.i_; }

   private:
    std::uint32_t i_;
  };

  constexpr explicit NodeIdRange(std::size_t n) : n_(static_cast<std::uint32_t>(n)) {}
  [[nodiscard]] constexpr iterator begin() const { return iterator(0); }
  [[nodiscard]] constexpr iterator end() const { return iterator(n_); }
  [[nodiscard]] constexpr std::size_t size() const { return n_; }

 private:
  std::uint32_t n_;
};

/// Aggregate size/character statistics.
struct NetlistStats {
  int inputs = 0;
  int outputs = 0;
  int dffs = 0;
  int comb = 0;
  int constants = 0;
  /// Technology-independent size estimate in 2-input-NAND equivalents
  /// (the unit the paper's Table 2 uses for "No. of gates").
  double nand2_equiv = 0.0;
  /// Fraction of logic nodes that are sequential — the property that drives
  /// the paper's Firewire result.
  [[nodiscard]] double sequential_fraction() const {
    const int logic_nodes = dffs + comb;
    return logic_nodes == 0 ? 0.0 : static_cast<double>(dffs) / logic_nodes;
  }
};

/// The netlist arena.
class Netlist {
 public:
  Netlist();
  explicit Netlist(std::string name);
  Netlist(const Netlist& other);
  Netlist(Netlist&& other) noexcept;
  Netlist& operator=(const Netlist& other);
  Netlist& operator=(Netlist&& other) noexcept;

  /// --- construction ---------------------------------------------------------

  NodeId add_input(std::string_view name);
  NodeId add_output(NodeId driver, std::string_view name);
  NodeId add_constant(bool value);
  /// Adds a combinational node; f.num_vars() must equal fanins.size().
  NodeId add_comb(const logic::TruthTable& f, std::span<const NodeId> fanins,
                  std::string_view name = {});
  NodeId add_comb(const logic::TruthTable& f, std::initializer_list<NodeId> fanins,
                  std::string_view name = {}) {
    return add_comb(f, std::span<const NodeId>(fanins.begin(), fanins.size()), name);
  }
  /// Adds a DFF. `d` may be invalid and connected later via set_dff_input
  /// (needed for feedback registers).
  NodeId add_dff(NodeId d, std::string_view name = {});
  void set_dff_input(NodeId dff, NodeId d);

  /// Gate sugar for the design generators (generic, unmapped logic).
  NodeId add_not(NodeId a);
  NodeId add_buf(NodeId a);
  NodeId add_and(NodeId a, NodeId b);
  NodeId add_or(NodeId a, NodeId b);
  NodeId add_xor(NodeId a, NodeId b);
  NodeId add_nand(NodeId a, NodeId b);
  NodeId add_nor(NodeId a, NodeId b);
  NodeId add_xnor(NodeId a, NodeId b);
  /// MUX: s == 0 -> d0, s == 1 -> d1.
  NodeId add_mux(NodeId s, NodeId d0, NodeId d1);
  NodeId add_xor3(NodeId a, NodeId b, NodeId c);
  NodeId add_maj(NodeId a, NodeId b, NodeId c);

  /// --- access ---------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id.index()]; }
  /// Mutable node access is for *tag* mutation (cell, config_tag, macro_rep,
  /// func); structure (fanins) is edited through set_fanin/replace_fanins so
  /// the analysis caches stay coherent.
  [[nodiscard]] Node& node(NodeId id) { return nodes_[id.index()]; }
  [[nodiscard]] const std::vector<NodeId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<NodeId>& dffs() const { return dffs_; }
  /// Every node id, in creation order — a counting view, no materialization.
  [[nodiscard]] NodeIdRange all_nodes() const { return NodeIdRange(nodes_.size()); }

  /// The node's fanins as a span over the shared pool. Invalidated by
  /// structural mutation (like any container view).
  [[nodiscard]] std::span<const NodeId> fanins(NodeId id) const {
    const Node& n = nodes_[id.index()];
    return {fanin_pool_.data() + n.fanin_offset, static_cast<std::size_t>(n.fanin_count)};
  }
  /// Single-fanin shorthand: fanins(id)[k].
  [[nodiscard]] NodeId fanin(NodeId id, int k) const {
    return fanin_pool_[nodes_[id.index()].fanin_offset + static_cast<std::uint32_t>(k)];
  }
  /// Rewires fanin pin `k` of `id` (the count is unchanged).
  void set_fanin(NodeId id, std::size_t k, NodeId fi);
  /// Replaces the whole fanin list. Shrinks in place; growth relocates the
  /// slice to the end of the pool. Deliberately does NOT enforce arity
  /// against `func` — the verify layer's corruption tests depend on being
  /// able to construct ill-formed netlists that `check()`/lint then reject.
  void replace_fanins(NodeId id, std::span<const NodeId> fanins);

  /// The node's interned name ("" when unnamed).
  [[nodiscard]] const std::string& name_of(NodeId id) const {
    return names_[nodes_[id.index()].name_id];
  }
  [[nodiscard]] const std::string& name_of(const Node& n) const {
    return names_[n.name_id];
  }
  void set_name(NodeId id, std::string_view name);

  /// --- analysis ---------------------------------------------------------------

  /// Combinational nodes and outputs in dependency order (inputs, constants
  /// and DFF outputs are sources; DFF D-pins are sinks). Asserts on
  /// combinational cycles. Memoized: repeated calls between structural
  /// mutations return the cached order (thread-safe fill for shared
  /// read-only netlists, e.g. parallel architecture comparison).
  [[nodiscard]] const std::vector<NodeId>& topo_order() const;
  /// fanout[i] = number of fanin references to node i. Memoized like
  /// topo_order().
  [[nodiscard]] const std::vector<int>& fanout_counts() const;
  [[nodiscard]] NetlistStats stats() const;

  /// Structural well-formedness: arities match, references valid, outputs
  /// wired, no combinational cycles. Returns an explanatory message on error.
  struct CheckResult {
    bool ok = true;
    std::string message;
  };
  [[nodiscard]] CheckResult check() const;

 private:
  NodeId push(Node n, std::span<const NodeId> fanins, std::string_view name);
  std::uint32_t intern_name(std::string_view name);
  void invalidate_analysis();
  void compute_topo(std::vector<NodeId>& out) const;

  std::string name_;
  std::vector<Node> nodes_;
  /// Shared CSR fanin pool; nodes_[i] owns the slice
  /// [fanin_offset, fanin_offset + fanin_count). Slices abandoned by
  /// replace_fanins growth are simply leaked inside the pool (append-only).
  std::vector<NodeId> fanin_pool_;
  /// Interned node names; names_[0] is the shared empty string.
  std::vector<std::string> names_;
  std::vector<NodeId> inputs_, outputs_, dffs_;

  /// Memoized structural analyses. The mutex makes concurrent *reads* of a
  /// shared netlist safe (first reader fills the cache); mutation requires
  /// exclusive access, as for any standard container.
  struct AnalysisCache {
    mutable std::mutex mutex;
    bool topo_valid FABRIC_GUARDED_BY(mutex) = false;
    std::vector<NodeId> topo FABRIC_GUARDED_BY(mutex);
    bool fanout_valid FABRIC_GUARDED_BY(mutex) = false;
    std::vector<int> fanouts FABRIC_GUARDED_BY(mutex);
    /// compute_topo() working set, kept here so invalidation-triggered
    /// recomputes reuse the capacity instead of reallocating five vectors.
    std::vector<int> pending FABRIC_GUARDED_BY(mutex);
    std::vector<std::uint32_t> fanout_offset FABRIC_GUARDED_BY(mutex);
    std::vector<std::uint32_t> fanout_pool FABRIC_GUARDED_BY(mutex);
    std::vector<std::uint32_t> cursor FABRIC_GUARDED_BY(mutex);
    std::vector<std::uint32_t> ready FABRIC_GUARDED_BY(mutex);
  };
  mutable AnalysisCache cache_;
};

}  // namespace vpga::netlist
