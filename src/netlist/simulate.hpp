#pragma once
/// \file simulate.hpp
/// Cycle-accurate netlist simulator.
///
/// Used for functional verification throughout the flow: after synthesis,
/// mapping, and compaction, the transformed netlist must be cycle-for-cycle
/// equivalent to the original on random stimulus (the property tests rely on
/// this). Combinational evaluation follows topological order; clocking is a
/// single global edge updating every DFF.

#include <vector>

#include "netlist/netlist.hpp"

namespace vpga::netlist {

/// Simulates one netlist instance. Keeps per-node values and DFF state.
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Sets primary input i (index into nl.inputs()).
  void set_input(std::size_t i, bool value);
  /// Evaluates all combinational logic for the current inputs/state.
  void eval();
  /// Clock edge: every DFF captures its D value. Call after eval().
  void step();
  /// Resets all DFF state to 0.
  void reset();

  /// Value of primary output i (index into nl.outputs()); valid after eval().
  [[nodiscard]] bool output(std::size_t i) const;
  /// Raw value of any node's output net; valid after eval().
  [[nodiscard]] bool value(NodeId id) const { return values_[id.index()]; }

 private:
  const Netlist& nl_;
  std::vector<NodeId> order_;
  std::vector<char> values_;
  std::vector<char> state_;  // per-DFF (indexed like nl.dffs())
};

/// Drives two netlists with identical random stimulus for `cycles` cycles and
/// compares all primary outputs each cycle. Netlists must have the same
/// number of inputs and outputs in the same order. Returns true on match.
bool equivalent_random_sim(const Netlist& a, const Netlist& b, int cycles,
                           std::uint64_t seed = 1);

}  // namespace vpga::netlist
