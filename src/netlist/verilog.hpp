#pragma once
/// \file verilog.hpp
/// Structural Verilog-2001 export.
///
/// Emits a synthesizable gate-level module from any netlist: combinational
/// nodes become sum-of-products `assign`s over their fanin wires (common
/// gates are pretty-printed), registers become a clocked always block. This
/// is the interop path out of the flow — the emitted module can be simulated
/// or re-synthesized by any external tool.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace vpga::netlist {

struct VerilogOptions {
  std::string clock_name = "clk";
  /// Emit `// cell:`/`// config:` annotations on mapped nodes.
  bool annotate = true;
};

/// Writes `nl` as one Verilog module (named after the netlist, sanitized).
void write_verilog(std::ostream& os, const Netlist& nl, const VerilogOptions& opts = {});
std::string to_verilog(const Netlist& nl, const VerilogOptions& opts = {});
bool save_verilog(const std::string& path, const Netlist& nl, const VerilogOptions& opts = {});

/// Sanitizes an arbitrary net name into a plain Verilog identifier
/// (brackets and other punctuation become underscores; empty -> fallback).
std::string verilog_identifier(const std::string& name, const std::string& fallback);

}  // namespace vpga::netlist
