#include "netlist/simulate.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace vpga::netlist {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), order_(nl.topo_order()), values_(nl.num_nodes(), 0),
      state_(nl.dffs().size(), 0) {}

void Simulator::set_input(std::size_t i, bool value) {
  VPGA_ASSERT(i < nl_.inputs().size());
  values_[nl_.inputs()[i].index()] = value ? 1 : 0;
}

void Simulator::eval() {
  // Boundary values first: constants and DFF outputs (Q = stored state).
  for (std::size_t i = 0; i < nl_.num_nodes(); ++i) {
    const Node& n = nl_.node(NodeId(i));
    if (n.type == NodeType::kConst) values_[i] = static_cast<char>(n.func.bits() & 1);
  }
  for (std::size_t d = 0; d < nl_.dffs().size(); ++d)
    values_[nl_.dffs()[d].index()] = state_[d];

  for (NodeId id : order_) {
    const Node& n = nl_.node(id);
    const auto fins = nl_.fanins(id);
    if (n.type == NodeType::kOutput) {
      values_[id.index()] = values_[fins[0].index()];
      continue;
    }
    unsigned row = 0;
    for (std::size_t k = 0; k < fins.size(); ++k)
      if (values_[fins[k].index()]) row |= 1u << k;
    values_[id.index()] = n.func.eval(row) ? 1 : 0;
  }
}

void Simulator::step() {
  for (std::size_t d = 0; d < nl_.dffs().size(); ++d) {
    const NodeId din = nl_.fanin(nl_.dffs()[d], 0);
    VPGA_ASSERT_MSG(din.valid(), "DFF left unconnected");
    state_[d] = values_[din.index()];
  }
}

void Simulator::reset() {
  for (auto& s : state_) s = 0;
}

bool Simulator::output(std::size_t i) const {
  VPGA_ASSERT(i < nl_.outputs().size());
  return values_[nl_.outputs()[i].index()] != 0;
}

bool equivalent_random_sim(const Netlist& a, const Netlist& b, int cycles,
                           std::uint64_t seed) {
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  Simulator sa(a), sb(b);
  common::Rng rng(seed);
  for (int cyc = 0; cyc < cycles; ++cyc) {
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      const bool v = rng.next_bool();
      sa.set_input(i, v);
      sb.set_input(i, v);
    }
    sa.eval();
    sb.eval();
    for (std::size_t o = 0; o < a.outputs().size(); ++o)
      if (sa.output(o) != sb.output(o)) return false;
    sa.step();
    sb.step();
  }
  return true;
}

}  // namespace vpga::netlist
