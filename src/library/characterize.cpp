#include "library/characterize.hpp"

#include "common/assert.hpp"

namespace vpga::library {

TimingArc characterize_arc(const EffortModel& m, const CellElectrical& e) {
  TimingArc arc;
  arc.intrinsic_ps = m.tau_ps * e.parasitic;
  arc.slope_ps_per_ff = m.tau_ps * e.logical_effort / (e.cin_units * m.unit_cap_ff);
  return arc;
}

CellElectrical default_electrical(CellKind k) {
  // g/p values follow Sutherland & Sproull's logical-effort catalogue;
  // the LUT3 numbers model the Figure-5 two-level pass-transistor mux tree
  // plus the output buffer every via-patterned LUT carries.
  switch (k) {
    case CellKind::kInv:   return {1.00, 1.0, 1.0, 2.5, 0.0};
    // BUF is the fanout-repair driver: a two-stage 4x buffer, so its input
    // presents 4 unit loads but its output slope is 4x flatter.
    case CellKind::kBuf:   return {1.00, 2.5, 4.0, 5.0, 0.0};
    case CellKind::kNd2wi: return {1.50, 2.2, 1.2, 5.0, 0.0};
    case CellKind::kNd3wi: return {1.80, 3.3, 1.3, 6.5, 0.0};
    // The granular PLB's MUXes are drawn at the fixed size they have inside
    // the tile (chosen for the power-delay tradeoff), which is generous —
    // the granular PLB carries ~26.6% more combinational area than the
    // LUT-based one (paper Section 2.3).
    case CellKind::kMux2:  return {2.00, 3.0, 1.6, 15.5, 0.0};
    // XOA: the same mux topology sized up further "to minimize logic delay":
    // larger input cap buys a flatter slope and lower effective parasitic.
    case CellKind::kXoa:   return {2.00, 2.4, 2.0, 16.5, 0.0};
    case CellKind::kLut3:  return {2.80, 9.0, 1.1, 26.0, 0.0};
    case CellKind::kDff:   return {1.60, 8.5, 1.1, 14.0, 60.0};
  }
  VPGA_ASSERT_MSG(false, "unknown CellKind");
  return {};
}

namespace {

int input_count(CellKind k) {
  switch (k) {
    case CellKind::kInv:
    case CellKind::kBuf:
    case CellKind::kDff: return 1;
    case CellKind::kNd2wi: return 2;
    case CellKind::kNd3wi:
    case CellKind::kMux2:
    case CellKind::kXoa:
    case CellKind::kLut3: return 3;
  }
  return 0;
}

logic::FnSet3 coverage_of(CellKind k) {
  using namespace logic;
  switch (k) {
    case CellKind::kInv: {
      // Inverter/buffer cover single literals and constants only.
      FnSet3 s;
      for (int v = 0; v < 3; ++v) {
        const auto t = TruthTable::var(3, v);
        s.set(static_cast<std::size_t>(t.bits()));
        s.set(static_cast<std::size_t>((~t).bits()));
      }
      s.set(0x00);
      s.set(0xFF);
      return s;
    }
    case CellKind::kBuf: return coverage_of(CellKind::kInv);
    case CellKind::kNd2wi: return nd2wi_set3();
    case CellKind::kNd3wi: return nd3wi_set3();
    case CellKind::kMux2:
    case CellKind::kXoa: return mux2_set3();
    case CellKind::kLut3: return lut3_set3();
    case CellKind::kDff: return {};
  }
  return {};
}

}  // namespace

CellLibrary characterize_library(const EffortModel& m) {
  std::vector<CellSpec> specs;
  specs.reserve(kNumCellKinds);
  for (int i = 0; i < kNumCellKinds; ++i) {
    const auto kind = static_cast<CellKind>(i);
    const auto e = default_electrical(kind);
    CellSpec s;
    s.kind = kind;
    s.name = to_string(kind);
    s.num_inputs = input_count(kind);
    s.area_um2 = e.area_um2;
    s.input_cap_ff = e.cin_units * m.unit_cap_ff;
    s.arc = characterize_arc(m, e);
    s.setup_ps = e.setup_ps;
    s.coverage = coverage_of(kind);
    specs.push_back(std::move(s));
  }
  return CellLibrary(std::move(specs));
}

const CellLibrary& CellLibrary::standard() {
  static const CellLibrary lib = characterize_library(EffortModel{});
  return lib;
}

const char* to_string(CellKind k) {
  switch (k) {
    case CellKind::kInv: return "INV";
    case CellKind::kBuf: return "BUF";
    case CellKind::kNd2wi: return "ND2WI";
    case CellKind::kNd3wi: return "ND3WI";
    case CellKind::kMux2: return "MUX2";
    case CellKind::kXoa: return "XOA";
    case CellKind::kLut3: return "LUT3";
    case CellKind::kDff: return "DFF";
  }
  return "?";
}

}  // namespace vpga::library
