#pragma once
/// \file characterize.hpp
/// Analytic cell characterization — the substitute for Silicon Metrics
/// CellRater in the paper's flow (Figure 6, step "Cell Characterization").
///
/// The paper characterizes each fixed-size component cell once and feeds the
/// resulting timing library to synthesis and STA. We reproduce the artefact
/// (a linear delay model per cell) from the method of logical effort:
///
///   delay = tau * (p + g * h),   h = C_load / C_in
///
/// so intrinsic = tau * p and slope = tau * g / C_in. The electrical
/// parameters below are representative of a 0.18 um process (the paper's
/// node); only their *ratios* affect the reproduced conclusions — most
/// importantly that the via-patterned 3-LUT (a two-level pass-transistor
/// tree behind an output buffer) is several times slower than the simple
/// cells when computing a simple function, which is the paper's stated
/// motivation for more granular PLBs.

#include "library/cells.hpp"

namespace vpga::library {

/// Process-level parameters of the logical-effort model.
struct EffortModel {
  double tau_ps = 12.0;        ///< delay unit (FO4/5 at 0.18 um)
  double unit_cap_ff = 1.8;    ///< input capacitance of the unit inverter
  double wire_cap_ff_per_um = 0.18;  ///< interconnect load (used by STA)
  double wire_res_ohm_per_um = 0.08; ///< interconnect resistance (Elmore)
};

/// Per-cell electrical description the characterizer consumes.
struct CellElectrical {
  double logical_effort = 1.0; ///< g of the worst arc
  double parasitic = 1.0;      ///< p (intrinsic, in tau units)
  double cin_units = 1.0;      ///< input cap in unit-inverter multiples
  double area_um2 = 0.0;
  double setup_ps = 0.0;       ///< sequential cells only
};

/// Characterizes one cell: produces the linear TimingArc used by STA.
TimingArc characterize_arc(const EffortModel& m, const CellElectrical& e);

/// Builds the whole characterized library (the "timing library" artefact of
/// the paper's Figure 6). Coverage sets are attached from logic::function_sets.
CellLibrary characterize_library(const EffortModel& m);

/// The default electrical description of each CellKind (fixed sizes chosen,
/// as in the paper, "to give a good power-delay tradeoff").
CellElectrical default_electrical(CellKind k);

}  // namespace vpga::library
