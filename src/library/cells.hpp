#pragma once
/// \file cells.hpp
/// The restricted standard-cell library of PLB component cells.
///
/// The paper's flow maps every design onto a *restricted* library consisting
/// of exactly the component cells of the PLB under study (MUX, XOA, ND3WI,
/// 3-LUT, buffers, inverters, DFF), each at the fixed size it has inside the
/// PLB. This header defines those cells; timing/area numbers come from the
/// characterization model in characterize.hpp (the CellRater substitute).

#include <cstdint>
#include <string>
#include <vector>

#include "logic/function_sets.hpp"

namespace vpga::library {

/// The component-cell alphabet shared by both PLB architectures.
enum class CellKind : std::uint8_t {
  kInv = 0,   ///< inverter (buffering / polarity)
  kBuf,       ///< buffer (fanout repair, programmable-polarity input buffers)
  kNd2wi,     ///< 2-input NAND with programmable inversion
  kNd3wi,     ///< 3-input NAND with programmable inversion
  kMux2,      ///< 2:1 MUX (plain, as found in the granular PLB)
  kXoa,       ///< the specially sized 2:1 MUX of the granular PLB
  kLut3,      ///< via-patterned 3-LUT (the mux tree of Figure 5)
  kDff,       ///< D flip-flop
};

inline constexpr int kNumCellKinds = 8;

/// Linear delay model for a cell's worst timing arc:
/// delay_ps = intrinsic_ps + slope_ps_per_ff * load_ff.
struct TimingArc {
  double intrinsic_ps = 0.0;
  double slope_ps_per_ff = 0.0;
  [[nodiscard]] double delay(double load_ff) const {
    return intrinsic_ps + slope_ps_per_ff * load_ff;
  }
};

/// A characterized library cell.
struct CellSpec {
  CellKind kind{};
  std::string name;
  int num_inputs = 0;       ///< logic pins (DFF: 1 = D; clock is implicit)
  double area_um2 = 0.0;    ///< standalone standard-cell footprint (flow a)
  double input_cap_ff = 0.0;///< capacitance presented by each input pin
  TimingArc arc;            ///< worst input-to-output (or clk-to-q) arc
  double setup_ps = 0.0;    ///< DFF only
  /// 3-variable coverage: the functions the cell can be via-configured to
  /// compute (empty pins wired per logic::function_sets conventions).
  logic::FnSet3 coverage;
  [[nodiscard]] bool is_sequential() const { return kind == CellKind::kDff; }
};

/// The full characterized library (all kinds, indexed by CellKind).
class CellLibrary {
 public:
  /// Builds the default library from the logical-effort characterization.
  static const CellLibrary& standard();

  [[nodiscard]] const CellSpec& spec(CellKind k) const {
    return specs_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] const std::vector<CellSpec>& all() const { return specs_; }

  /// NAND2-equivalent gate count contribution of one cell of kind k —
  /// the paper reports design sizes "in units of equivalent 2-input Nand
  /// gates", conventionally area(cell)/area(NAND2).
  [[nodiscard]] double nand2_equivalents(CellKind k) const {
    return spec(k).area_um2 / spec(CellKind::kNd2wi).area_um2;
  }

  explicit CellLibrary(std::vector<CellSpec> specs) : specs_(std::move(specs)) {}

 private:
  std::vector<CellSpec> specs_;
};

/// Short cell name ("ND3WI", "LUT3", ...).
const char* to_string(CellKind k);

}  // namespace vpga::library
