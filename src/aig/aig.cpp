#include "aig/aig.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace vpga::aig {

Aig::Aig() {
  nodes_.push_back(Node{});  // node 0: constant false
}

Lit Aig::add_input() {
  Node n;
  n.is_and = false;
  nodes_.push_back(n);
  const auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
  inputs_.push_back(idx);
  return lit(idx, false);
}

Lit Aig::add_and(Lit a, Lit b) {
  // Trivial rules.
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == negate(b)) return kFalse;
  if (a > b) std::swap(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (auto it = strash_.find(key); it != strash_.end()) return lit(it->second, false);
  Node n;
  n.is_and = true;
  n.fanin0 = a;
  n.fanin1 = b;
  nodes_.push_back(n);
  const auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
  strash_.emplace(key, idx);
  return lit(idx, false);
}

Lit Aig::add_xor(Lit a, Lit b) {
  return negate(add_and(negate(add_and(a, negate(b))), negate(add_and(negate(a), b))));
}

Lit Aig::add_mux(Lit sel, Lit d0, Lit d1) {
  return negate(add_and(negate(add_and(negate(sel), d0)), negate(add_and(sel, d1))));
}

Lit Aig::build_function(const logic::TruthTable& f, std::span<const Lit> leaves) {
  VPGA_ASSERT(static_cast<std::size_t>(f.num_vars()) == leaves.size());
  if (f == logic::TruthTable::constant(f.num_vars(), false)) return kFalse;
  if (f == logic::TruthTable::constant(f.num_vars(), true)) return kTrue;
  if (f.num_vars() == 1) return f.eval(1) ? leaves[0] : negate(leaves[0]);
  // Shannon on the last variable (keeps remaining leaf order stable).
  const int v = f.num_vars() - 1;
  const auto f0 = f.cofactor(v, false);
  const auto f1 = f.cofactor(v, true);
  const auto sub = leaves.first(leaves.size() - 1);
  if (f0 == f1) return build_function(f0, sub);
  const Lit l0 = build_function(f0, sub);
  const Lit l1 = build_function(f1, sub);
  return add_mux(leaves[static_cast<std::size_t>(v)], l0, l1);
}

std::size_t Aig::count_reachable_ands() const {
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<std::uint32_t> stack;
  stack.reserve(nodes_.size());
  for (Lit o : outputs_) stack.push_back(node_of(o));
  std::size_t count = 0;
  while (!stack.empty()) {
    const auto i = stack.back();
    stack.pop_back();
    if (seen[i]) continue;
    seen[i] = 1;
    if (nodes_[i].is_and) {
      ++count;
      stack.push_back(node_of(nodes_[i].fanin0));
      stack.push_back(node_of(nodes_[i].fanin1));
    }
  }
  return count;
}

std::vector<int> Aig::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  // Nodes are created in topological order (fanins precede fanouts).
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_and) continue;
    level[i] = 1 + std::max(level[node_of(nodes_[i].fanin0)],
                            level[node_of(nodes_[i].fanin1)]);
  }
  return level;
}

int Aig::depth() const {
  const auto level = levels();
  int d = 0;
  for (Lit o : outputs_) d = std::max(d, level[node_of(o)]);
  return d;
}

std::vector<bool> Aig::eval(const std::vector<bool>& in) const {
  VPGA_ASSERT(in.size() == inputs_.size());
  std::vector<char> val(nodes_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) val[inputs_[i]] = in[i] ? 1 : 0;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_and) continue;
    const auto v0 = val[node_of(nodes_[i].fanin0)] ^ (is_complemented(nodes_[i].fanin0) ? 1 : 0);
    const auto v1 = val[node_of(nodes_[i].fanin1)] ^ (is_complemented(nodes_[i].fanin1) ? 1 : 0);
    val[i] = static_cast<char>(v0 & v1);
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (Lit o : outputs_)
    out.push_back((val[node_of(o)] ^ (is_complemented(o) ? 1 : 0)) != 0);
  return out;
}

AigMapping from_netlist(const netlist::Netlist& nl) {
  AigMapping m;
  std::vector<Lit> of(nl.num_nodes(), kFalse);
  for (netlist::NodeId id : nl.inputs()) of[id.index()] = m.aig.add_input();
  m.num_pis = nl.inputs().size();
  for (netlist::NodeId id : nl.dffs()) of[id.index()] = m.aig.add_input();
  m.num_latches = nl.dffs().size();
  for (netlist::NodeId id : nl.all_nodes()) {
    const auto& n = nl.node(id);
    if (n.type == netlist::NodeType::kConst)
      of[id.index()] = (n.func.bits() & 1) ? kTrue : kFalse;
  }
  std::vector<Lit> leaves;
  leaves.reserve(logic::TruthTable::kMaxVars);
  for (netlist::NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    const auto fins = nl.fanins(id);
    if (n.type == netlist::NodeType::kOutput) {
      of[id.index()] = of[fins[0].index()];
      continue;
    }
    leaves.clear();
    for (netlist::NodeId fi : fins) leaves.push_back(of[fi.index()]);
    of[id.index()] = m.aig.build_function(n.func, leaves);
  }
  for (netlist::NodeId id : nl.outputs()) m.aig.add_output(of[id.index()]);
  m.num_pos = nl.outputs().size();
  for (netlist::NodeId id : nl.dffs()) {
    const netlist::NodeId d = nl.fanin(id, 0);
    VPGA_ASSERT_MSG(d.valid(), "DFF left unconnected");
    m.aig.add_output(of[d.index()]);
  }
  return m;
}

netlist::Netlist to_netlist(const AigMapping& m, const std::string& name) {
  netlist::Netlist nl(name);
  const Aig& aig = m.aig;
  std::vector<netlist::NodeId> of(aig.num_nodes());
  // Boundary inputs.
  std::vector<netlist::NodeId> dff_nodes;
  dff_nodes.reserve(aig.num_inputs() - m.num_pis);
  for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
    if (i < m.num_pis) {
      of[aig.inputs()[i]] = nl.add_input("i" + std::to_string(i));
    } else {
      const auto ff = nl.add_dff(netlist::NodeId{}, "l" + std::to_string(i - m.num_pis));
      of[aig.inputs()[i]] = ff;
      dff_nodes.push_back(ff);
    }
  }
  const auto zero = nl.add_constant(false);
  of[0] = zero;
  for (std::uint32_t i = 0; i < aig.num_nodes(); ++i) {
    const auto& n = aig.node(i);
    if (!n.is_and) continue;
    auto input_of = [&](Lit l) {
      netlist::NodeId base = of[node_of(l)];
      return is_complemented(l) ? nl.add_not(base) : base;
    };
    of[i] = nl.add_and(input_of(n.fanin0), input_of(n.fanin1));
  }
  auto resolve = [&](Lit l) {
    const netlist::NodeId base = of[node_of(l)];
    return is_complemented(l) ? nl.add_not(base) : base;
  };
  for (std::size_t j = 0; j < aig.outputs().size(); ++j) {
    if (j < m.num_pos) {
      nl.add_output(resolve(aig.outputs()[j]), "o" + std::to_string(j));
    } else {
      nl.set_dff_input(dff_nodes[j - m.num_pos], resolve(aig.outputs()[j]));
    }
  }
  return nl;
}

}  // namespace vpga::aig
