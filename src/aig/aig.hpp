#pragma once
/// \file aig.hpp
/// And-inverter graph: the subject graph of logic optimization and mapping.
///
/// The AIG is purely combinational; sequential designs are handled by cutting
/// at register boundaries. Combinational inputs are the primary inputs
/// followed by the latch outputs; combinational outputs are the primary
/// outputs followed by the latch next-state functions. Structural hashing,
/// constant folding and trivial-node rules are applied on construction, which
/// is where most of the "logic optimization" of the paper's Design Compiler
/// stage happens in this reproduction (the rest is the balance pass).

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace vpga::aig {

/// A literal: node index << 1 | complemented.
using Lit = std::uint32_t;

constexpr Lit lit(std::uint32_t node, bool complemented) {
  return (node << 1) | (complemented ? 1u : 0u);
}
constexpr std::uint32_t node_of(Lit l) { return l >> 1; }
constexpr bool is_complemented(Lit l) { return l & 1u; }
constexpr Lit negate(Lit l) { return l ^ 1u; }

/// The constant-false literal (node 0 is the constant node).
inline constexpr Lit kFalse = 0;
inline constexpr Lit kTrue = 1;

class Aig {
 public:
  struct Node {
    Lit fanin0 = 0;  ///< valid for AND nodes only
    Lit fanin1 = 0;
    bool is_and = false;  ///< false: constant (node 0) or combinational input
  };

  Aig();

  /// --- construction ----------------------------------------------------------

  /// Adds a combinational input (PI or latch output) and returns its literal.
  Lit add_input();
  /// Structurally hashed AND with constant folding; may return an existing
  /// literal or a constant.
  Lit add_and(Lit a, Lit b);
  Lit add_or(Lit a, Lit b) { return negate(add_and(negate(a), negate(b))); }
  Lit add_xor(Lit a, Lit b);
  Lit add_mux(Lit sel, Lit d0, Lit d1);
  /// Builds an arbitrary function over the given leaf literals by Shannon
  /// decomposition (hashed, so shared subfunctions collapse).
  Lit build_function(const logic::TruthTable& f, std::span<const Lit> leaves);
  /// Registers a combinational output.
  void add_output(Lit l) { outputs_.push_back(l); }

  /// --- access -----------------------------------------------------------------

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<Lit>& outputs() const { return outputs_; }
  [[nodiscard]] const Node& node(std::uint32_t i) const { return nodes_[i]; }
  [[nodiscard]] bool is_input(std::uint32_t i) const {
    return !nodes_[i].is_and && i != 0;
  }

  /// Number of AND nodes reachable from the outputs (the classic size metric).
  [[nodiscard]] std::size_t count_reachable_ands() const;
  /// level[i] = AND-depth of node i (inputs at 0).
  [[nodiscard]] std::vector<int> levels() const;
  [[nodiscard]] int depth() const;

  /// Evaluates the whole AIG for one input assignment (bit i of `in` = input
  /// i); used by the property tests. Returns one bool per output.
  [[nodiscard]] std::vector<bool> eval(const std::vector<bool>& in) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;
  std::vector<Lit> outputs_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

/// Correspondence between a netlist and its AIG.
struct AigMapping {
  Aig aig;
  /// Combinational input i of the AIG corresponds to:
  ///   i < num_pis            -> netlist input i
  ///   otherwise              -> netlist dff (i - num_pis) output
  std::size_t num_pis = 0;
  std::size_t num_latches = 0;
  /// Combinational output j corresponds to:
  ///   j < num_pos            -> netlist output j
  ///   otherwise              -> D input of dff (j - num_pos)
  std::size_t num_pos = 0;
};

/// Converts a (generic or mapped) netlist into an AIG, cutting at registers.
AigMapping from_netlist(const netlist::Netlist& nl);

/// Rebuilds a generic netlist (2-input gates + DFFs) from an AIG mapping —
/// primarily for simulation-based equivalence checks.
netlist::Netlist to_netlist(const AigMapping& m, const std::string& name = "from_aig");

}  // namespace vpga::aig
