#include "aig/balance.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace vpga::aig {
namespace {

/// Collects the leaves of the maximal AND-tree rooted at `root` in graph `g`:
/// expands through non-complemented AND fanins that have a single reference
/// (duplicating shared or complemented subtrees would change area).
void collect_leaves(const Aig& g, const std::vector<int>& refs, Lit root,
                    std::vector<Lit>& leaves, int depth = 0) {
  const auto node = node_of(root);
  if (is_complemented(root) || !g.node(node).is_and || refs[node] > 1 || depth > 512) {
    leaves.push_back(root);
    return;
  }
  collect_leaves(g, refs, g.node(node).fanin0, leaves, depth + 1);
  collect_leaves(g, refs, g.node(node).fanin1, leaves, depth + 1);
}

}  // namespace

BalanceResult balance(const Aig& g) {
  BalanceResult out;
  out.depth_before = g.depth();

  // Reference counts (fanout) per node.
  std::vector<int> refs(g.num_nodes(), 0);
  for (std::uint32_t n = 0; n < g.num_nodes(); ++n) {
    if (!g.node(n).is_and) continue;
    ++refs[node_of(g.node(n).fanin0)];
    ++refs[node_of(g.node(n).fanin1)];
  }
  for (Lit o : g.outputs()) ++refs[node_of(o)];

  Aig b;
  std::vector<Lit> remap(g.num_nodes(), kFalse);
  for (std::uint32_t n = 1; n < g.num_nodes(); ++n)
    if (g.is_input(n)) remap[n] = b.add_input();

  // Level-aware rebuild: nodes in index order (topological).
  std::vector<int> level_in_b;  // level per b-node, maintained lazily
  auto level_of = [&](Lit l) {
    const auto lv = b.levels();
    return lv[node_of(l)];
  };
  (void)level_of;

  for (std::uint32_t n = 1; n < g.num_nodes(); ++n) {
    if (!g.node(n).is_and) continue;
    // Every AND is rebuilt from its maximal tree's leaves; interior
    // single-fanout nodes get their remap entry too (harmless — unused
    // entries are dropped by downstream reachability).
    std::vector<Lit> leaves;
    collect_leaves(g, refs, g.node(n).fanin0, leaves);
    collect_leaves(g, refs, g.node(n).fanin1, leaves);
    // Map leaves into b and combine shallow-first (Huffman on level).
    std::vector<std::pair<int, Lit>> heap;
    heap.reserve(leaves.size());
    const auto levels_b = b.levels();
    for (Lit l : leaves) {
      const Lit m = remap[node_of(l)] ^ (l & 1u);
      heap.emplace_back(levels_b[node_of(m)], m);
    }
    while (heap.size() > 1) {
      std::sort(heap.begin(), heap.end(),
                [](const auto& a, const auto& c) { return a.first > c.first; });
      const auto x = heap.back();
      heap.pop_back();
      const auto y = heap.back();
      heap.pop_back();
      const Lit combined = b.add_and(x.second, y.second);
      heap.emplace_back(std::max(x.first, y.first) + 1, combined);
    }
    remap[n] = heap[0].second;
  }

  for (Lit o : g.outputs()) {
    const Lit m = node_of(o) == 0 ? (is_complemented(o) ? kTrue : kFalse)
                                  : (remap[node_of(o)] ^ (o & 1u));
    b.add_output(m);
  }
  out.depth_after = b.depth();
  out.aig = std::move(b);
  return out;
}

}  // namespace vpga::aig
