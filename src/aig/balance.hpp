#pragma once
/// \file balance.hpp
/// Delay balancing of AND/OR trees.
///
/// Generators and Shannon expansion can leave skewed gate chains; this pass
/// collects maximal same-operation trees (through complemented-edge De Morgan
/// boundaries it stops) and rebuilds them as balanced trees, reducing AIG
/// depth without changing functionality. Offered as an optional optimization
/// ahead of mapping (the default flow's structures are already balanced by
/// construction, so it is not wired in by default).

#include "aig/aig.hpp"

namespace vpga::aig {

struct BalanceResult {
  Aig aig;
  int depth_before = 0;
  int depth_after = 0;
};

/// Rebuilds `g` with every maximal AND-tree balanced. Inputs keep their
/// order; outputs correspond one-to-one.
BalanceResult balance(const Aig& g);

}  // namespace vpga::aig
