#pragma once
/// \file npn.hpp
/// NPN classification of 3-input functions.
///
/// Two functions are NPN-equivalent when one becomes the other under input
/// Negation, input Permutation and output Negation — exactly the freedoms a
/// via-patterned cell with programmable polarity and routable pins has. The
/// 256 three-input functions fall into 14 NPN classes; classifying coverage
/// sets by NPN class shows *which kinds* of logic a PLB component captures,
/// the lens the paper's predecessor studies ([7], [6]) used to motivate
/// heterogeneous blocks.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "logic/function_sets.hpp"

namespace vpga::logic {

/// The canonical (numerically smallest) representative of tt's NPN class.
std::uint8_t npn_canonical(std::uint8_t tt);

/// All members of tt's NPN class (sorted, deduplicated).
std::vector<std::uint8_t> npn_class_of(std::uint8_t tt);

/// One NPN equivalence class of 3-input functions.
struct NpnClass {
  std::uint8_t representative = 0;  ///< canonical member
  int size = 0;                     ///< number of member functions
  std::string name;                 ///< human-readable label ("XOR3", "MAJ", ...)
};

/// The 14 NPN classes of 3-input logic, sorted by representative.
const std::vector<NpnClass>& npn_classes();

/// Fraction of each NPN class covered by a function set (e.g. a cell's
/// coverage); out[i] in [0,1] aligned with npn_classes().
std::vector<double> npn_coverage(const FnSet3& set);

}  // namespace vpga::logic
