#pragma once
/// \file npn.hpp
/// NPN classification of small Boolean functions (<= 4 inputs).
///
/// Two functions are NPN-equivalent when one becomes the other under input
/// Negation, input Permutation and output Negation — exactly the freedoms a
/// via-patterned cell with programmable polarity and routable pins has. The
/// 256 three-input functions fall into 14 NPN classes and the 65536
/// four-input functions into 222; classifying coverage sets by NPN class
/// shows *which kinds* of logic a PLB component captures, the lens the
/// paper's predecessor studies ([7], [6]) used to motivate heterogeneous
/// blocks.
///
/// Canonicalization is table-backed: the first query builds a dense
/// tt -> canonical-representative table by orbit enumeration (each class is
/// visited once and flooded over its members), after which `npn_canonical` /
/// `npn_canonical4` are single loads. This is what lets the technology
/// mapper replace per-cut x per-option coverage probes with one
/// canonicalize-then-lookup (synth::MatchIndex).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "logic/function_sets.hpp"

namespace vpga::logic {

/// One cached NPN transform: `apply(tt)` = permute inputs, negate the inputs
/// in `negate_mask`, then (optionally) complement the output.
struct NpnTransform {
  std::array<std::uint8_t, 4> perm{0, 1, 2, 3};  ///< new var v reads old var perm[v]
  std::uint8_t negate_mask = 0;                  ///< bit v: input v complemented
  bool negate_output = false;
};

/// --- 3-input functions (the PLB component granularity) ----------------------

/// The canonical (numerically smallest) representative of tt's NPN class.
/// O(1): one load from the lazily built 256-entry table.
std::uint8_t npn_canonical(std::uint8_t tt);

/// The full tt -> canonical table (256 entries), for bulk consumers such as
/// the mapper's match index.
const std::array<std::uint8_t, 256>& npn_canonical_table3();

/// A transform carrying tt onto its canonical representative
/// (apply_npn3(tt, result) == npn_canonical(tt)). Deterministic: the first
/// transform in (permutation, negation-mask, output-phase) order.
NpnTransform npn_canonical_transform(std::uint8_t tt);

/// Applies an NPN transform to a 3-input truth table.
std::uint8_t apply_npn3(std::uint8_t tt, const NpnTransform& t);

/// All members of tt's NPN class (sorted, deduplicated).
std::vector<std::uint8_t> npn_class_of(std::uint8_t tt);

/// One NPN equivalence class of 3-input functions.
struct NpnClass {
  std::uint8_t representative = 0;  ///< canonical member
  int size = 0;                     ///< number of member functions
  std::string name;                 ///< human-readable label ("XOR3", "MAJ", ...)
};

/// The 14 NPN classes of 3-input logic, sorted by representative.
const std::vector<NpnClass>& npn_classes();

/// Fraction of each NPN class covered by a function set (e.g. a cell's
/// coverage); out[i] in [0,1] aligned with npn_classes().
std::vector<double> npn_coverage(const FnSet3& set);

/// --- 4-input functions (LUT4-granularity analysis; S3 over cones) -----------

/// The canonical representative of tt's NPN class among 4-input functions.
/// O(1): one load from the lazily built 65536-entry table.
std::uint16_t npn_canonical4(std::uint16_t tt);

/// The full tt -> canonical table (65536 entries).
const std::array<std::uint16_t, 65536>& npn_canonical_table4();

/// The 222 canonical class representatives of 4-input logic, ascending.
const std::vector<std::uint16_t>& npn_representatives4();

/// Applies an NPN transform to a 4-input truth table.
std::uint16_t apply_npn4(std::uint16_t tt, const NpnTransform& t);

/// Brute-force canonicalization: minimum over all 768 NPN images, computed
/// from scratch with no table. Reference implementation for the property
/// tests and the BM_NpnCanon speedup baseline.
std::uint16_t npn_canonical4_brute(std::uint16_t tt);

}  // namespace vpga::logic
