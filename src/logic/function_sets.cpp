#include "logic/function_sets.hpp"

#include <array>

namespace vpga::logic {
namespace {

/// The 8-bit truth tables of all "pin sources" available through the
/// via-programmable local interconnect for a cell embedded among the three
/// signals a, b, c: each literal in both polarities, plus the two constants.
std::array<std::uint8_t, 8> pin_sources3() {
  std::array<std::uint8_t, 8> src{};
  int n = 0;
  for (int v = 0; v < 3; ++v) {
    const auto t = TruthTable::var(3, v);
    src[static_cast<std::size_t>(n++)] = static_cast<std::uint8_t>(t.bits());
    src[static_cast<std::size_t>(n++)] = static_cast<std::uint8_t>((~t).bits());
  }
  src[6] = 0x00;  // ground
  src[7] = 0xFF;  // power
  return src;
}

FnSet3 enumerate_nand(int arity) {
  const auto src = pin_sources3();
  FnSet3 out;
  // Iterate over all pin wirings; output inversion doubles the set.
  const int combos = arity == 2 ? 64 : 512;
  for (int c = 0; c < combos; ++c) {
    std::uint8_t conj = 0xFF;
    int rem = c;
    for (int p = 0; p < arity; ++p) {
      conj &= src[static_cast<std::size_t>(rem % 8)];
      rem /= 8;
    }
    const auto nand = static_cast<std::uint8_t>(~conj);
    out.set(nand);
    out.set(static_cast<std::uint8_t>(~nand));
  }
  return out;
}

FnSet3 enumerate_mux3() {
  const auto src = pin_sources3();
  FnSet3 out;
  for (std::uint8_t s : src)
    for (std::uint8_t d0 : src)
      for (std::uint8_t d1 : src) {
        const auto f = static_cast<std::uint8_t>((~s & d0) | (s & d1));
        out.set(f);
      }
  return out;
}

/// Projects a 3-var coverage set onto functions of (a, b) only.
FnSet2 project2(const FnSet3& s3) {
  FnSet2 out;
  for (int tt2 = 0; tt2 < 16; ++tt2) {
    // Extend tt2(a,b) to 3 vars with c as don't-care: rows 4..7 repeat 0..3.
    const auto tt3 = static_cast<std::uint8_t>(tt2 | (tt2 << 4));
    if (s3.test(tt3)) out.set(static_cast<std::size_t>(tt2));
  }
  return out;
}

}  // namespace

const FnSet3& nd2wi_set3() {
  static const FnSet3 s = enumerate_nand(2);
  return s;
}

const FnSet3& nd3wi_set3() {
  static const FnSet3 s = enumerate_nand(3);
  return s;
}

const FnSet3& mux2_set3() {
  static const FnSet3 s = enumerate_mux3();
  return s;
}

const FnSet3& lut3_set3() {
  static const FnSet3 s = ~FnSet3{};
  return s;
}

const FnSet2& nd2wi_set2() {
  static const FnSet2 s = project2(nd2wi_set3());
  return s;
}

const FnSet2& mux2_set2() {
  static const FnSet2 s = project2(mux2_set3());
  return s;
}

}  // namespace vpga::logic
