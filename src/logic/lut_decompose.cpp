#include "logic/lut_decompose.hpp"

#include "common/assert.hpp"

namespace vpga::logic {

MuxTreeRealization decompose_lut3(const TruthTable& f) {
  VPGA_ASSERT(f.num_vars() == 3);
  MuxTreeRealization r;
  for (unsigned j = 0; j < 4; ++j) {
    // Cofactor with b = bit0(j), c = bit1(j): a 1-variable function of a.
    const bool at_a0 = f.eval(((j & 1u) << 1) | ((j >> 1) << 2));
    const bool at_a1 = f.eval(1u | ((j & 1u) << 1) | ((j >> 1) << 2));
    if (!at_a0 && !at_a1) r.leaf[j] = LeafWire::kGnd;
    else if (at_a0 && at_a1) r.leaf[j] = LeafWire::kVdd;
    else if (!at_a0 && at_a1) r.leaf[j] = LeafWire::kA;
    else r.leaf[j] = LeafWire::kNotA;
  }
  return r;
}

bool eval_mux_tree(const MuxTreeRealization& r, unsigned row) {
  const bool a = row & 1u;
  const bool b = (row >> 1) & 1u;
  const bool c = (row >> 2) & 1u;
  auto leaf_value = [a](LeafWire w) {
    switch (w) {
      case LeafWire::kGnd: return false;
      case LeafWire::kVdd: return true;
      case LeafWire::kA: return a;
      case LeafWire::kNotA: return !a;
    }
    return false;
  };
  // First level: two MUXes selected by b; second level: one MUX selected by c.
  const bool m0 = b ? leaf_value(r.leaf[1]) : leaf_value(r.leaf[0]);
  const bool m1 = b ? leaf_value(r.leaf[3]) : leaf_value(r.leaf[2]);
  return c ? m1 : m0;
}

TruthTable mux_tree_function(const MuxTreeRealization& r) {
  TruthTable t(3, 0);
  std::uint64_t bits = 0;
  for (unsigned row = 0; row < 8; ++row)
    if (eval_mux_tree(r, row)) bits |= std::uint64_t{1} << row;
  return TruthTable(3, bits);
}

const char* to_string(LeafWire w) {
  switch (w) {
    case LeafWire::kGnd: return "0";
    case LeafWire::kVdd: return "1";
    case LeafWire::kA: return "a";
    case LeafWire::kNotA: return "a'";
  }
  return "?";
}

}  // namespace vpga::logic
