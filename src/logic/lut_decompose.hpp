#pragma once
/// \file lut_decompose.hpp
/// Figure 5 of the paper: a via-patterned 3-LUT is exactly three 2:1 MUXes.
///
/// In a via-configurable fabric the LUT "SRAM bits" are via-tied literals, so
/// f(a,b,c) = MUX(c; MUX(b; d00, d01), MUX(b; d10, d11)) with each leaf datum
/// d_ij wired to one of {0, 1, a, a'}. The granular PLB splits this tree into
/// its three component MUXes and re-arranges them so intermediate outputs are
/// accessible — this module constructs and verifies the decomposition.

#include <array>
#include <cstdint>

#include "logic/truth_table.hpp"

namespace vpga::logic {

/// What a leaf data pin of the mux tree is via-wired to.
enum class LeafWire : std::uint8_t { kGnd, kVdd, kA, kNotA };

/// A concrete three-MUX realization of a 3-input function.
/// leaf[j] drives the data input of the first-level MUXes for the cofactor
/// with (b,c) = (bit0(j), bit1(j)).
struct MuxTreeRealization {
  std::array<LeafWire, 4> leaf{};
};

/// Builds the (unique) mux-tree realization of the given 3-variable function.
MuxTreeRealization decompose_lut3(const TruthTable& f);

/// Evaluates a realization on one input row (bit0 = a, bit1 = b, bit2 = c).
bool eval_mux_tree(const MuxTreeRealization& r, unsigned row);

/// Recovers the truth table a realization computes (inverse of decompose).
TruthTable mux_tree_function(const MuxTreeRealization& r);

/// Human-readable wiring name ("0", "1", "a", "a'").
const char* to_string(LeafWire w);

}  // namespace vpga::logic
