#pragma once
/// \file truth_table.hpp
/// Complete truth tables for Boolean functions of up to 6 variables.
///
/// A function of n variables is stored as the low 2^n bits of a 64-bit word;
/// row r (the bits of the inputs, x0 = LSB) holds f(r). This is the common
/// currency between the architecture analysis (Section 2 of the paper), the
/// technology mapper (cut functions), and the netlist simulator.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/assert.hpp"

namespace vpga::logic {

/// Value-semantic truth table over `num_vars()` ordered variables.
class TruthTable {
 public:
  static constexpr int kMaxVars = 6;

  /// The constant-0 function of n variables.
  constexpr TruthTable() = default;
  constexpr TruthTable(int num_vars, std::uint64_t bits)
      : nvars_(static_cast<std::uint8_t>(num_vars)), bits_(bits & mask(num_vars)) {}

  /// Named constructors ------------------------------------------------------

  /// f = x_var (projection).
  static TruthTable var(int num_vars, int v) {
    TruthTable t(num_vars, 0);
    for (int r = 0; r < (1 << num_vars); ++r)
      if (r & (1 << v)) t.bits_ |= std::uint64_t{1} << r;
    return t;
  }
  /// f = constant c.
  static TruthTable constant(int num_vars, bool c) {
    return TruthTable(num_vars, c ? ~std::uint64_t{0} : 0);
  }

  /// Accessors ---------------------------------------------------------------

  [[nodiscard]] constexpr int num_vars() const { return nvars_; }
  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr int num_rows() const { return 1 << nvars_; }
  /// f evaluated on input row r (bit i of r = value of x_i).
  [[nodiscard]] constexpr bool eval(unsigned row) const {
    return (bits_ >> row) & 1u;
  }

  /// Pointwise operators (operands must have equal arity) ---------------------

  friend TruthTable operator&(TruthTable a, TruthTable b) { return binop(a, b, a.bits_ & b.bits_); }
  friend TruthTable operator|(TruthTable a, TruthTable b) { return binop(a, b, a.bits_ | b.bits_); }
  friend TruthTable operator^(TruthTable a, TruthTable b) { return binop(a, b, a.bits_ ^ b.bits_); }
  TruthTable operator~() const { return TruthTable(nvars_, ~bits_); }
  friend constexpr bool operator==(TruthTable a, TruthTable b) {
    return a.nvars_ == b.nvars_ && a.bits_ == b.bits_;
  }

  /// Structure queries ---------------------------------------------------------

  /// True iff the function's value depends on x_v.
  [[nodiscard]] bool depends_on(int v) const {
    return restrict_var(v, false).bits_ != restrict_var(v, true).bits_;
  }
  /// Number of variables the function actually depends on.
  [[nodiscard]] int support_size() const {
    int n = 0;
    for (int v = 0; v < nvars_; ++v) n += depends_on(v) ? 1 : 0;
    return n;
  }

  /// Shannon cofactor with respect to x_v, keeping the arity (x_v becomes a
  /// don't-care variable the result no longer depends on).
  [[nodiscard]] TruthTable restrict_var(int v, bool value) const {
    TruthTable t(nvars_, 0);
    for (int r = 0; r < num_rows(); ++r) {
      const int src = value ? (r | (1 << v)) : (r & ~(1 << v));
      if (eval(static_cast<unsigned>(src))) t.bits_ |= std::uint64_t{1} << r;
    }
    return t;
  }

  /// Shannon cofactor with respect to x_v, *dropping* x_v: the result has one
  /// fewer variable; surviving variables keep their relative order.
  [[nodiscard]] TruthTable cofactor(int v, bool value) const {
    VPGA_ASSERT(nvars_ >= 1);
    TruthTable t(nvars_ - 1, 0);
    for (int r = 0; r < (1 << (nvars_ - 1)); ++r) {
      const int low = r & ((1 << v) - 1);
      const int high = (r >> v) << (v + 1);
      const int src = high | (value ? (1 << v) : 0) | low;
      if (eval(static_cast<unsigned>(src))) t.bits_ |= std::uint64_t{1} << r;
    }
    return t;
  }

  /// Result of permuting inputs: new variable v drives old variable perm[v],
  /// i.e. result(x) = f(y) with y[perm[v]] = x[v].
  [[nodiscard]] TruthTable permute(const std::array<int, kMaxVars>& perm) const {
    TruthTable t(nvars_, 0);
    for (int r = 0; r < num_rows(); ++r) {
      unsigned src = 0;
      for (int v = 0; v < nvars_; ++v)
        if (r & (1 << v)) src |= 1u << perm[static_cast<std::size_t>(v)];
      if (eval(src)) t.bits_ |= std::uint64_t{1} << r;
    }
    return t;
  }

  /// Result of complementing input x_v.
  [[nodiscard]] TruthTable negate_var(int v) const {
    TruthTable t(nvars_, 0);
    for (int r = 0; r < num_rows(); ++r)
      if (eval(static_cast<unsigned>(r) ^ (1u << v))) t.bits_ |= std::uint64_t{1} << r;
    return t;
  }

  /// Extends the function to `new_num_vars` variables (added variables are
  /// don't-cares appended after the existing ones).
  [[nodiscard]] TruthTable extend(int new_num_vars) const {
    VPGA_ASSERT(new_num_vars >= nvars_ && new_num_vars <= kMaxVars);
    TruthTable t(new_num_vars, 0);
    const int lowmask = (1 << nvars_) - 1;
    for (int r = 0; r < (1 << new_num_vars); ++r)
      if (eval(static_cast<unsigned>(r & lowmask))) t.bits_ |= std::uint64_t{1} << r;
    return t;
  }

  /// "01101001"-style row string, row 0 first (debugging / golden tests).
  [[nodiscard]] std::string to_string() const {
    std::string s;
    s.reserve(static_cast<std::size_t>(num_rows()));
    for (int r = 0; r < num_rows(); ++r) s.push_back(eval(static_cast<unsigned>(r)) ? '1' : '0');
    return s;
  }

 private:
  static constexpr std::uint64_t mask(int nvars) {
    return nvars >= 6 ? ~std::uint64_t{0} : (std::uint64_t{1} << (1 << nvars)) - 1;
  }
  static TruthTable binop(TruthTable a, TruthTable b, std::uint64_t bits) {
    VPGA_ASSERT(a.nvars_ == b.nvars_);
    return TruthTable(a.nvars_, bits);
  }

  std::uint8_t nvars_ = 0;
  std::uint64_t bits_ = 0;
};

/// Functional composition: f applied to argument functions that all share one
/// variable space. `args.size()` must equal `f.num_vars()`, each argument must
/// have the same arity, and the result has that shared arity:
/// result(x) = f(args[0](x), ..., args[k-1](x)). This is the truth-table
/// bridge the exact-equivalence checker uses to collapse an extracted cone
/// into a single table over the cone's support.
inline TruthTable compose(const TruthTable& f, std::span<const TruthTable> args) {
  VPGA_ASSERT(static_cast<int>(args.size()) == f.num_vars());
  const int out_vars = args.empty() ? 0 : args[0].num_vars();
  std::uint64_t bits = 0;
  for (int r = 0; r < (1 << out_vars); ++r) {
    unsigned idx = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      VPGA_ASSERT(args[i].num_vars() == out_vars);
      idx |= static_cast<unsigned>(args[i].eval(static_cast<unsigned>(r))) << i;
    }
    if (f.eval(idx)) bits |= std::uint64_t{1} << r;
  }
  return TruthTable(out_vars, bits);
}

/// Common 3-variable functions used throughout the architecture analysis.
/// Variable order convention: x0 = a, x1 = b, x2 = c (or the select s).
namespace tt3 {
inline TruthTable a() { return TruthTable::var(3, 0); }
inline TruthTable b() { return TruthTable::var(3, 1); }
inline TruthTable c() { return TruthTable::var(3, 2); }
inline TruthTable xor3() { return a() ^ b() ^ c(); }
inline TruthTable xnor3() { return ~xor3(); }
inline TruthTable maj3() { return (a() & b()) | (a() & c()) | (b() & c()); }
inline TruthTable mux() { return (~c() & a()) | (c() & b()); }  // c selects b
inline TruthTable nand3() { return ~(a() & b() & c()); }
}  // namespace tt3

}  // namespace vpga::logic
