#include "logic/s3.hpp"

#include <vector>

#include "common/assert.hpp"

namespace vpga::logic {
namespace {

/// Cofactors of an 8-bit truth table with respect to x2 (the select), as
/// 4-bit functions of (a, b). Row layout makes this a simple nibble split.
struct Cofactors {
  std::uint8_t g;  // f | s=0
  std::uint8_t h;  // f | s=1
};

constexpr Cofactors cofactors_wrt_select(std::uint8_t tt) {
  return {static_cast<std::uint8_t>(tt & 0x0F), static_cast<std::uint8_t>(tt >> 4)};
}

}  // namespace

S3Analysis analyze_s3() {
  S3Analysis out;
  const FnSet2& nd2 = nd2wi_set2();
  for (int f = 0; f < 256; ++f) {
    const auto [g, h] = cofactors_wrt_select(static_cast<std::uint8_t>(f));
    const bool g_ok = nd2.test(g);
    const bool h_ok = nd2.test(h);
    S3Category cat;
    if (g_ok && h_ok) {
      cat = S3Category::kFeasible;
    } else if (!g_ok && !h_ok) {
      // Both cofactors are XOR-type.
      if (g == h) {
        cat = (g == kTt2Xor) ? S3Category::kTwoInputXor : S3Category::kTwoInputXnor;
      } else {
        // xor/xnor pair: complementary cofactors -> 3-input XOR or XNOR.
        VPGA_ASSERT(static_cast<std::uint8_t>(~g & 0x0F) == h);
        cat = S3Category::kComplementaryCofactors;
      }
    } else {
      const std::uint8_t bad = g_ok ? h : g;
      cat = (bad == kTt2Xor) ? S3Category::kCofactorXor : S3Category::kCofactorXnor;
    }
    out.category[static_cast<std::size_t>(f)] = cat;
    ++out.category_count[static_cast<std::size_t>(cat)];
    if (cat == S3Category::kFeasible) out.feasible.set(static_cast<std::size_t>(f));
  }
  return out;
}

FnSet3 s3_feasible_any_select() {
  FnSet3 out;
  for (int f = 0; f < 256; ++f) {
    const TruthTable t(3, static_cast<std::uint64_t>(f));
    for (int v = 0; v < 3 && !out.test(static_cast<std::size_t>(f)); ++v) {
      const auto g = static_cast<std::uint8_t>(t.cofactor(v, false).bits());
      const auto h = static_cast<std::uint8_t>(t.cofactor(v, true).bits());
      if (nd2wi_set2().test(g) && nd2wi_set2().test(h))
        out.set(static_cast<std::size_t>(f));
    }
  }
  return out;
}

const FnSet3& modified_s3_set3() {
  static const FnSet3 set = [] {
    FnSet3 out;
    // Collect the member truth tables of each internal gate's coverage.
    std::vector<std::uint8_t> xoa, nd;
    for (int f = 0; f < 256; ++f) {
      if (mux2_set3().test(static_cast<std::size_t>(f))) xoa.push_back(static_cast<std::uint8_t>(f));
      if (nd2wi_set3().test(static_cast<std::size_t>(f))) nd.push_back(static_cast<std::uint8_t>(f));
    }
    // Literal/constant sources available directly at the output MUX pins.
    std::vector<std::uint8_t> literals;
    for (int v = 0; v < 3; ++v) {
      const auto t = TruthTable::var(3, v);
      literals.push_back(static_cast<std::uint8_t>(t.bits()));
      literals.push_back(static_cast<std::uint8_t>((~t).bits()));
    }
    literals.push_back(0x00);
    literals.push_back(0xFF);

    // Enumerate output-MUX wirings. Each pin draws from literals plus at most
    // one use of the XOA output and one use of the ND output. Enumerating
    // (XOA fn) x (ND fn) x (pin-source choice) covers all cases, including
    // those where a gate output is unused (literals subsume idle gates).
    auto mux = [](std::uint8_t s, std::uint8_t d0, std::uint8_t d1) {
      return static_cast<std::uint8_t>((~s & d0) | (s & d1));
    };
    for (std::uint8_t x : xoa) {
      for (std::uint8_t n : nd) {
        std::vector<std::uint8_t> pins = literals;
        pins.push_back(x);
        pins.push_back(n);
        for (std::uint8_t s : pins)
          for (std::uint8_t d0 : pins)
            for (std::uint8_t d1 : pins) out.set(mux(s, d0, d1));
      }
    }
    return out;
  }();
  return set;
}

const char* to_string(S3Category c) {
  switch (c) {
    case S3Category::kFeasible: return "S3-feasible";
    case S3Category::kCofactorXor: return "one cofactor is XOR";
    case S3Category::kCofactorXnor: return "one cofactor is XNOR";
    case S3Category::kTwoInputXor: return "simplifies to 2-input XOR";
    case S3Category::kTwoInputXnor: return "simplifies to 2-input XNOR";
    case S3Category::kComplementaryCofactors: return "complementary cofactors (3-input XOR/XNOR)";
  }
  return "?";
}

}  // namespace vpga::logic
