#pragma once
/// \file function_sets.hpp
/// Exhaustively enumerated coverage sets of the VPGA component cells.
///
/// A "coverage set" is the set of Boolean functions a via-configured cell can
/// realize when its pins may be wired (through the via-programmable local
/// interconnect) to input literals of either polarity, to power/ground, or
/// bridged together. These sets drive both the paper's Section 2 analysis and
/// exact matching in the technology mapper.

#include <bitset>
#include <cstdint>

#include "logic/truth_table.hpp"

namespace vpga::logic {

/// Set of 3-variable functions, indexed by the 8-bit truth table.
using FnSet3 = std::bitset<256>;
/// Set of 2-variable functions, indexed by the 4-bit truth table.
using FnSet2 = std::bitset<16>;

/// 2-variable truth-table constants (bit order: row ab = 00,01,10,11; x0=a LSB).
inline constexpr std::uint8_t kTt2Xor = 0b0110;
inline constexpr std::uint8_t kTt2Xnor = 0b1001;

/// True iff the 2-variable function is XOR or XNOR — the only 2-input
/// functions a NAND gate with programmable inversion cannot produce.
constexpr bool is_xor_type2(std::uint8_t tt2) {
  return (tt2 & 0xF) == kTt2Xor || (tt2 & 0xF) == kTt2Xnor;
}

/// Functions of (a, b) realizable by an ND2WI gate — a 2-input NAND with
/// programmable inversion on each input and the output, with constant-tying
/// and input bridging allowed. Exactly the 14 non-XOR-type functions.
const FnSet2& nd2wi_set2();

/// Functions of (a, b) realizable by a single 2:1 MUX whose pins may take
/// literals/constants. All 16 (this is why the XOA element closes the S3 gap).
const FnSet2& mux2_set2();

/// 3-variable coverage of an ND3WI gate (3-input NAND, programmable inversion
/// everywhere, bridging/constants allowed).
const FnSet3& nd3wi_set3();

/// 3-variable coverage of a single 2:1 MUX (select and both data pins wired to
/// any literal of {a,b,c} in either polarity or a constant).
const FnSet3& mux2_set3();

/// 3-variable coverage of an ND2WI gate alone (degenerate 3-var functions).
const FnSet3& nd2wi_set3();

/// 3-variable coverage of a 3-LUT: all 256 functions.
const FnSet3& lut3_set3();

/// Counts set bits; convenience for reports/tests.
inline int count(const FnSet3& s) { return static_cast<int>(s.count()); }
inline int count(const FnSet2& s) { return static_cast<int>(s.count()); }

}  // namespace vpga::logic
