#pragma once
/// \file s3.hpp
/// Section 2.1 of the paper: analysis of 3-input functions on the S3 gate and
/// on the modified S3 cell.
///
/// The S3 gate is a 2:1 MUX whose data inputs are driven by two ND2WI gates
/// over (a, b) and whose select pin is the third input s. Writing
/// f(a,b,s) = s'·g(a,b) + s·h(a,b), the gate realizes f exactly when both
/// Shannon cofactors g and h are ND2WI-implementable, i.e. not XOR/XNOR.
/// That yields 14 × 14 = 196 of the 256 three-input functions; the 60
/// infeasible ones fall into the five categories of the paper's Figure 2.

#include <array>
#include <cstdint>

#include "logic/function_sets.hpp"

namespace vpga::logic {

/// Classification of a 3-input function with respect to the S3 gate
/// (select = x2). Categories 1-5 match the paper's Figure 2.
enum class S3Category : std::uint8_t {
  kFeasible = 0,              ///< both cofactors ND2WI-implementable
  kCofactorXor = 1,           ///< one cofactor ND2WI-able, the other is XOR
  kCofactorXnor = 2,          ///< one cofactor ND2WI-able, the other is XNOR
  kTwoInputXor = 3,           ///< f simplifies to a 2-input XOR (both cofactors = XOR)
  kTwoInputXnor = 4,          ///< f simplifies to a 2-input XNOR (both cofactors = XNOR)
  kComplementaryCofactors = 5 ///< cofactors complement each other: 3-input XOR/XNOR
};

inline constexpr int kNumS3Categories = 6;

/// Exhaustive S3 classification of all 256 three-input functions.
struct S3Analysis {
  /// category[tt] for every 8-bit truth table (select = x2).
  std::array<S3Category, 256> category{};
  /// Number of functions per category (index by S3Category).
  std::array<int, kNumS3Categories> category_count{};
  /// Functions the S3 gate realizes (== category kFeasible). Paper: 196.
  FnSet3 feasible;
};

/// Runs the exhaustive classification (cheap; cached by callers if desired).
S3Analysis analyze_s3();

/// Functions realizable when the select pin may be driven by *any* of the
/// three inputs (free pin assignment at the routing level). A strict superset
/// of analyze_s3().feasible; reported alongside Figure 2 as an extension.
FnSet3 s3_feasible_any_select();

/// Coverage of the paper's modified S3 cell (Figure 3): one XOA (a 2:1 MUX
/// with programmable output inversion, able to realize any 2-input function),
/// one ND2WI gate, and an output 2:1 MUX whose pins may be via-wired to the
/// XOA output, the ND output, any input literal of either polarity, or a
/// constant. The paper's claim (verified exhaustively): all 256 functions.
const FnSet3& modified_s3_set3();

/// Human-readable category name (for the Figure 2 bench output).
const char* to_string(S3Category c);

}  // namespace vpga::logic
