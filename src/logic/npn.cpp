#include "logic/npn.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/assert.hpp"
#include "logic/truth_table.hpp"

namespace vpga::logic {
namespace {

/// Enumerates all NPN transforms of tt: 6 permutations x 8 input negation
/// masks x 2 output phases = 96 images (with duplicates).
std::vector<std::uint8_t> npn_orbit(std::uint8_t tt) {
  static const std::array<std::array<int, TruthTable::kMaxVars>, 6> kPerms = {{
      {0, 1, 2, 3, 4, 5},
      {0, 2, 1, 3, 4, 5},
      {1, 0, 2, 3, 4, 5},
      {1, 2, 0, 3, 4, 5},
      {2, 0, 1, 3, 4, 5},
      {2, 1, 0, 3, 4, 5},
  }};
  std::vector<std::uint8_t> out;
  out.reserve(96);
  const TruthTable base(3, tt);
  for (const auto& perm : kPerms) {
    const TruthTable p = base.permute(perm);
    for (unsigned negs = 0; negs < 8; ++negs) {
      TruthTable t = p;
      for (int v = 0; v < 3; ++v)
        if (negs & (1u << v)) t = t.negate_var(v);
      out.push_back(static_cast<std::uint8_t>(t.bits()));
      out.push_back(static_cast<std::uint8_t>((~t).bits()));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const char* class_name(std::uint8_t representative) {
  // Named by a familiar member of the class.
  switch (representative) {
    case 0x00: return "constant";
    case 0x01: return "AND3/NOR3";
    case 0x03: return "AND2 (one input unused)";
    case 0x05: return "literal";
    case 0x06: return "XOR2 (one input unused)";
    case 0x07: return "OR-AND (a+b)'c' family";
    case 0x0F: return "literal (one var)";
    case 0x16: return "one-hot (exactly-one)";
    case 0x17: return "not-majority / minority";
    case 0x18: return "a'b'c' + abc-type";
    case 0x19: return "XOR-AND mix";
    case 0x1B: return "mux-like partial";
    case 0x1E: return "AND-XOR (a xor bc)";
    case 0x3C: return "XOR2 of products";
    case 0x69: return "XNOR3/XOR3";
    case 0x6B: return "XOR-majority mix";
    case 0xCA: return "MUX (if-then-else)";
    case 0xE8: return "MAJ3 (carry)";
    default: return "";
  }
}

}  // namespace

std::uint8_t npn_canonical(std::uint8_t tt) {
  const auto orbit = npn_orbit(tt);
  return orbit.front();
}

std::vector<std::uint8_t> npn_class_of(std::uint8_t tt) { return npn_orbit(tt); }

const std::vector<NpnClass>& npn_classes() {
  static const std::vector<NpnClass> classes = [] {
    std::map<std::uint8_t, int> size_of;
    for (int f = 0; f < 256; ++f) ++size_of[npn_canonical(static_cast<std::uint8_t>(f))];
    std::vector<NpnClass> out;
    for (const auto& [rep, size] : size_of) {
      NpnClass c;
      c.representative = rep;
      c.size = size;
      c.name = class_name(rep);
      if (c.name.empty()) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "class 0x%02X", rep);
        c.name = buf;
      }
      out.push_back(std::move(c));
    }
    return out;
  }();
  return classes;
}

std::vector<double> npn_coverage(const FnSet3& set) {
  const auto& classes = npn_classes();
  std::vector<double> covered(classes.size(), 0.0);
  std::vector<double> total(classes.size(), 0.0);
  for (int f = 0; f < 256; ++f) {
    const auto rep = npn_canonical(static_cast<std::uint8_t>(f));
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (classes[i].representative != rep) continue;
      total[i] += 1.0;
      if (set.test(static_cast<std::size_t>(f))) covered[i] += 1.0;
      break;
    }
  }
  for (std::size_t i = 0; i < classes.size(); ++i)
    covered[i] = total[i] > 0 ? covered[i] / total[i] : 0.0;
  return covered;
}

}  // namespace vpga::logic
