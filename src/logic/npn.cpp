#include "logic/npn.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "common/assert.hpp"
#include "logic/truth_table.hpp"

namespace vpga::logic {
namespace {

/// The 6 permutations of 3 variables, extended to TruthTable::kMaxVars.
constexpr std::array<std::array<int, TruthTable::kMaxVars>, 6> kPerms3 = {{
    {0, 1, 2, 3, 4, 5},
    {0, 2, 1, 3, 4, 5},
    {1, 0, 2, 3, 4, 5},
    {1, 2, 0, 3, 4, 5},
    {2, 0, 1, 3, 4, 5},
    {2, 1, 0, 3, 4, 5},
}};

/// Enumerates all NPN transforms of tt: 6 permutations x 8 input negation
/// masks x 2 output phases = 96 images (with duplicates).
std::vector<std::uint8_t> npn_orbit(std::uint8_t tt) {
  std::vector<std::uint8_t> out;
  out.reserve(96);
  const TruthTable base(3, tt);
  for (const auto& perm : kPerms3) {
    const TruthTable p = base.permute(perm);
    for (unsigned negs = 0; negs < 8; ++negs) {
      TruthTable t = p;
      for (int v = 0; v < 3; ++v)
        if (negs & (1u << v)) t = t.negate_var(v);
      out.push_back(static_cast<std::uint8_t>(t.bits()));
      out.push_back(static_cast<std::uint8_t>((~t).bits()));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const char* class_name(std::uint8_t representative) {
  // Named by a familiar member of the class.
  switch (representative) {
    case 0x00: return "constant";
    case 0x01: return "AND3/NOR3";
    case 0x03: return "AND2 (one input unused)";
    case 0x05: return "literal";
    case 0x06: return "XOR2 (one input unused)";
    case 0x07: return "OR-AND (a+b)'c' family";
    case 0x0F: return "literal (one var)";
    case 0x16: return "one-hot (exactly-one)";
    case 0x17: return "not-majority / minority";
    case 0x18: return "a'b'c' + abc-type";
    case 0x19: return "XOR-AND mix";
    case 0x1B: return "mux-like partial";
    case 0x1E: return "AND-XOR (a xor bc)";
    case 0x3C: return "XOR2 of products";
    case 0x69: return "XNOR3/XOR3";
    case 0x6B: return "XOR-majority mix";
    case 0xCA: return "MUX (if-then-else)";
    case 0xE8: return "MAJ3 (carry)";
    default: return "";
  }
}

/// The 24 permutations of 4 variables, in lexicographic order.
const std::array<std::array<std::uint8_t, 4>, 24>& perms4() {
  static const auto perms = [] {
    std::array<std::array<std::uint8_t, 4>, 24> out{};
    std::array<std::uint8_t, 4> p = {0, 1, 2, 3};
    int i = 0;
    do {
      out[static_cast<std::size_t>(i++)] = p;
    } while (std::next_permutation(p.begin(), p.end()));
    VPGA_ASSERT(i == 24);
    return out;
  }();
  return perms;
}

/// Row-source maps for all 384 signed permutations of 4 inputs:
/// image bit r = tt bit src[perm][neg][r]. Shared by the table builder and
/// the brute-force reference so both enumerate the identical orbit.
struct SignedPerm4 {
  std::array<std::uint8_t, 16> src;
};
const std::array<SignedPerm4, 384>& signed_perms4() {
  static const auto maps = [] {
    std::array<SignedPerm4, 384> out{};
    std::size_t k = 0;
    for (const auto& perm : perms4()) {
      for (unsigned neg = 0; neg < 16; ++neg) {
        for (unsigned r = 0; r < 16; ++r) {
          unsigned s = 0;
          for (int v = 0; v < 4; ++v)
            if (r & (1u << v)) s |= 1u << perm[static_cast<std::size_t>(v)];
          out[k].src[r] = static_cast<std::uint8_t>(s ^ neg);
        }
        ++k;
      }
    }
    return out;
  }();
  return maps;
}

std::uint16_t apply_signed_perm4(std::uint16_t tt, const SignedPerm4& sp) {
  std::uint16_t image = 0;
  for (unsigned r = 0; r < 16; ++r)
    if (tt & (1u << sp.src[r])) image |= static_cast<std::uint16_t>(1u << r);
  return image;
}

}  // namespace

const std::array<std::uint8_t, 256>& npn_canonical_table3() {
  // Orbit-flooding: walk functions in ascending order; the first member of
  // each class encountered is its numeric minimum, so the whole orbit is
  // assigned in one sweep and every later member is a pure table hit.
  static const auto table = [] {
    std::array<std::uint8_t, 256> canon{};
    std::array<bool, 256> assigned{};
    for (int f = 0; f < 256; ++f) {
      if (assigned[f]) continue;
      for (std::uint8_t member : npn_orbit(static_cast<std::uint8_t>(f))) {
        canon[member] = static_cast<std::uint8_t>(f);
        assigned[member] = true;
      }
    }
    return canon;
  }();
  return table;
}

std::uint8_t npn_canonical(std::uint8_t tt) { return npn_canonical_table3()[tt]; }

std::uint8_t apply_npn3(std::uint8_t tt, const NpnTransform& t) {
  std::array<int, TruthTable::kMaxVars> perm = {0, 1, 2, 3, 4, 5};
  for (int v = 0; v < 3; ++v) perm[static_cast<std::size_t>(v)] = t.perm[static_cast<std::size_t>(v)];
  TruthTable out = TruthTable(3, tt).permute(perm);
  for (int v = 0; v < 3; ++v)
    if (t.negate_mask & (1u << v)) out = out.negate_var(v);
  if (t.negate_output) out = ~out;
  return static_cast<std::uint8_t>(out.bits());
}

NpnTransform npn_canonical_transform(std::uint8_t tt) {
  const std::uint8_t target = npn_canonical(tt);
  for (const auto& perm : kPerms3) {
    for (unsigned negs = 0; negs < 8; ++negs) {
      for (int phase = 0; phase < 2; ++phase) {
        NpnTransform t;
        for (int v = 0; v < 3; ++v)
          t.perm[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(perm[static_cast<std::size_t>(v)]);
        t.negate_mask = static_cast<std::uint8_t>(negs);
        t.negate_output = phase == 1;
        if (apply_npn3(tt, t) == target) return t;
      }
    }
  }
  VPGA_ASSERT_MSG(false, "NPN orbit does not reach its own canonical form");
  return {};
}

std::vector<std::uint8_t> npn_class_of(std::uint8_t tt) { return npn_orbit(tt); }

const std::vector<NpnClass>& npn_classes() {
  static const std::vector<NpnClass> classes = [] {
    std::map<std::uint8_t, int> size_of;
    for (int f = 0; f < 256; ++f) ++size_of[npn_canonical(static_cast<std::uint8_t>(f))];
    std::vector<NpnClass> out;
    for (const auto& [rep, size] : size_of) {
      NpnClass c;
      c.representative = rep;
      c.size = size;
      c.name = class_name(rep);
      if (c.name.empty()) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "class 0x%02X", rep);
        c.name = buf;
      }
      out.push_back(std::move(c));
    }
    return out;
  }();
  return classes;
}

std::vector<double> npn_coverage(const FnSet3& set) {
  const auto& classes = npn_classes();
  std::vector<double> covered(classes.size(), 0.0);
  std::vector<double> total(classes.size(), 0.0);
  for (int f = 0; f < 256; ++f) {
    const auto rep = npn_canonical(static_cast<std::uint8_t>(f));
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (classes[i].representative != rep) continue;
      total[i] += 1.0;
      if (set.test(static_cast<std::size_t>(f))) covered[i] += 1.0;
      break;
    }
  }
  for (std::size_t i = 0; i < classes.size(); ++i)
    covered[i] = total[i] > 0 ? covered[i] / total[i] : 0.0;
  return covered;
}

const std::array<std::uint16_t, 65536>& npn_canonical_table4() {
  // Same orbit-flooding as the 3-var table, with precomputed row-source maps
  // (24 perms x 16 negation masks) so each of the 768 images of a class
  // representative costs 16 bit probes. Total build work is ~222 classes x
  // 768 images — a few million bit operations, done once per process.
  static const auto table = [] {
    auto canon = std::make_unique<std::array<std::uint16_t, 65536>>();
    std::vector<bool> assigned(65536, false);
    const auto& sps = signed_perms4();
    for (std::uint32_t f = 0; f < 65536; ++f) {
      if (assigned[f]) continue;
      for (const auto& sp : sps) {
        const std::uint16_t image = apply_signed_perm4(static_cast<std::uint16_t>(f), sp);
        canon->at(image) = static_cast<std::uint16_t>(f);
        assigned[image] = true;
        const std::uint16_t comp = static_cast<std::uint16_t>(~image);
        canon->at(comp) = static_cast<std::uint16_t>(f);
        assigned[comp] = true;
      }
    }
    return canon;
  }();
  return *table;
}

std::uint16_t npn_canonical4(std::uint16_t tt) { return npn_canonical_table4()[tt]; }

const std::vector<std::uint16_t>& npn_representatives4() {
  static const std::vector<std::uint16_t> reps = [] {
    const auto& table = npn_canonical_table4();
    std::vector<std::uint16_t> out;
    for (std::uint32_t f = 0; f < 65536; ++f)
      if (table[f] == f) out.push_back(static_cast<std::uint16_t>(f));
    return out;  // ascending by construction
  }();
  return reps;
}

std::uint16_t apply_npn4(std::uint16_t tt, const NpnTransform& t) {
  std::uint16_t out = 0;
  for (unsigned r = 0; r < 16; ++r) {
    unsigned s = 0;
    for (int v = 0; v < 4; ++v)
      if (r & (1u << v)) s |= 1u << t.perm[static_cast<std::size_t>(v)];
    s ^= t.negate_mask;
    if (tt & (1u << s)) out |= static_cast<std::uint16_t>(1u << r);
  }
  return t.negate_output ? static_cast<std::uint16_t>(~out) : out;
}

std::uint16_t npn_canonical4_brute(std::uint16_t tt) {
  std::uint16_t best = tt;
  for (const auto& sp : signed_perms4()) {
    const std::uint16_t image = apply_signed_perm4(tt, sp);
    best = std::min(best, image);
    best = std::min(best, static_cast<std::uint16_t>(~image));
  }
  return best;
}

}  // namespace vpga::logic
