// Quickstart: take a small design through the complete VPGA flow.
//
//   $ build/examples/quickstart
//
// Builds an 8-bit ALU, runs the paper's flow b (synthesis -> restricted
// mapping -> compaction -> placement -> packing -> routing -> STA) on the
// granular PLB of Figure 4, and prints the implementation summary.

#include <cstdio>

#include "flow/flow.hpp"

int main() {
  using namespace vpga;

  // 1. A design. Generators return a netlist plus evaluation parameters;
  //    you can also build your own netlist with netlist::Netlist.
  const designs::BenchmarkDesign design = designs::make_alu(8);
  const auto stats = design.netlist.stats();
  std::printf("design: %s  (%d inputs, %d outputs, %d FFs, %.0f NAND2-eq)\n",
              design.netlist.name().c_str(), stats.inputs, stats.outputs, stats.dffs,
              stats.nand2_equiv);

  // 2. A PLB architecture: the paper's granular PLB (one XOA, two MUXes,
  //    one ND3WI, one DFF per tile).
  const auto arch = core::PlbArchitecture::granular();
  std::printf("architecture: %s  (tile %.0f um2)\n\n", arch.name.c_str(), arch.tile_area_um2);

  // 3. Run the full VPGA flow (flow b).
  const auto report = flow::run_flow(design, arch, 'b');

  std::printf("results:\n");
  std::printf("  compaction:   %.1f%% gate-area reduction\n",
              100 * report.compaction.area_reduction());
  std::printf("  PLB array:    %d tiles used, die %.0f um2\n", report.plbs,
              report.die_area_um2);
  std::printf("  wirelength:   %.0f um\n", report.wirelength_um);
  std::printf("  timing:       critical path %.0f ps against a %.0f ps clock\n",
              report.critical_delay_ps, report.clock_period_ps);
  std::printf("  top-10 slack: %.1f ps average\n", report.avg_slack_top10_ps);

  // 4. Compare against the unpacked ASIC implementation (flow a).
  const auto asic = flow::run_flow(design, arch, 'a');
  std::printf("\nversus flow a (ASIC style, same restricted library):\n");
  std::printf("  die area  %.0f -> %.0f um2 (+%.0f%% for regularity)\n", asic.die_area_um2,
              report.die_area_um2,
              100 * (report.die_area_um2 / asic.die_area_um2 - 1.0));
  std::printf("  slack     %.1f -> %.1f ps\n", asic.avg_slack_top10_ps,
              report.avg_slack_top10_ps);
  return 0;
}
