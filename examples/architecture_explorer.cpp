// Architecture exploration: define a custom PLB and evaluate it against the
// paper's two architectures — the workflow the paper proposes for
// "application-domain specific" logic block design (Section 4).
//
//   $ build/examples/architecture_explorer [alu|firewire|adder]

#include <cstdio>
#include <cstring>

#include "flow/flow.hpp"

int main(int argc, char** argv) {
  using namespace vpga;
  using core::ConfigKind;
  using core::PlbComponent;

  const char* which = argc > 1 ? argv[1] : "alu";
  designs::BenchmarkDesign design = [&] {
    if (std::strcmp(which, "firewire") == 0) return designs::make_firewire(8, 8);
    if (std::strcmp(which, "adder") == 0)
      return designs::BenchmarkDesign{designs::make_ripple_adder(32), 8000.0, true};
    return designs::make_alu(16);
  }();
  std::printf("exploring architectures for %s\n\n", design.netlist.name().c_str());

  // A custom candidate: a controller-oriented granular PLB — two flip-flops
  // per tile, same combinational fabric. Any component/config/area mix can
  // be described this way.
  core::PlbArchitecture custom;
  custom.name = "custom_ctrl_plb";
  custom.component_count[static_cast<std::size_t>(PlbComponent::kXoa)] = 1;
  custom.component_count[static_cast<std::size_t>(PlbComponent::kMux)] = 2;
  custom.component_count[static_cast<std::size_t>(PlbComponent::kNd3)] = 1;
  custom.component_count[static_cast<std::size_t>(PlbComponent::kDff)] = 2;
  custom.configs = {ConfigKind::kMx,    ConfigKind::kNd3,     ConfigKind::kNdmx,
                    ConfigKind::kXoamx, ConfigKind::kXoandmx, ConfigKind::kFf,
                    ConfigKind::kFullAdder};
  custom.tile_area_um2 = 112.0;  // granular + one extra DFF slot
  custom.comb_area_um2 = 63.3;

  std::printf("%-16s %10s %8s %12s %12s\n", "architecture", "die um2", "PLBs",
              "critical ps", "slack10 ps");
  for (const auto& arch : {custom, core::PlbArchitecture::granular(),
                           core::PlbArchitecture::lut_based()}) {
    const auto r = flow::run_flow(design, arch, 'b');
    std::printf("%-16s %10.0f %8d %12.0f %12.1f\n", arch.name.c_str(), r.die_area_um2,
                r.plbs, r.critical_delay_ps, r.avg_slack_top10_ps);
  }

  std::printf(
      "\nEdit this file to try other mixes: component counts, configuration\n"
      "sets and tile geometry are all plain data (core::PlbArchitecture).\n");
  return 0;
}
