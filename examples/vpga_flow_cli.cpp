// Command-line flow driver: run any built-in design (or a saved netlist)
// through either flow on either architecture, with optional artifacts.
//
//   vpga_flow_cli --design alu --arch granular --flow b
//   vpga_flow_cli --design fpu --arch lut --flow a
//   vpga_flow_cli --netlist my.vnl --clock 5000 --svg layout.svg
//   vpga_flow_cli --design switch --save-mapped switch_compacted.vnl
//   vpga_flow_cli --design alu --arch-file my_plb.plb
//
// Exit code 0 on success; prints a one-screen implementation report.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "compact/compact.hpp"
#include "core/arch_io.hpp"
#include "flow/flow.hpp"
#include "netlist/io.hpp"
#include "obs/export.hpp"
#include "netlist/verilog.hpp"
#include "pack/layout_svg.hpp"
#include "place/placement.hpp"
#include "synth/buffering.hpp"
#include "synth/mapper.hpp"
#include "timing/power.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--design alu|firewire|fpu|switch|adder|counter]\n"
               "          [--netlist file.vnl] [--clock ps]\n"
               "          [--arch granular|lut] [--arch-file file.plb] [--flow a|b]\n"
               "          [--svg layout.svg] [--save-mapped file.vnl]\n"
               "          [--save-verilog file.v] [--power]\n"
               "          [--verify off|lint|equiv|exact]  stage checking (docs/VERIFY.md;\n"
               "                                      exact = SAT-backed equivalence proof)\n"
               "          [--cec-force-bdd]           route every exact-equivalence point\n"
               "                                      through the ROBDD tier first\n"
               "          [--trace trace.json]        Chrome trace of the flow stages\n"
               "          [--metrics-json file.json]  flow counters/histograms\n"
               "                                      (docs/OBSERVABILITY.md)\n"
               "          [--metrics-openmetrics file.txt]  same metrics as an\n"
               "                                      OpenMetrics text exposition\n"
               "          [--memtrack]                per-stage allocation profiling\n"
               "                                      (*.alloc_* counters)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpga;
  std::string design_name = "alu";
  std::string netlist_path;
  std::string arch_name = "granular";
  std::string arch_file;
  std::string svg_path, save_path, verilog_path;
  std::string trace_path, metrics_path, openmetrics_path;
  char which = 'b';
  double clock_ps = 0.0;
  bool want_power = false;
  bool want_memtrack = false;
  bool cec_force_bdd = false;
  verify::VerifyLevel verify_level = verify::VerifyLevel::kLint;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--design") {
      if (const char* v = next()) design_name = v;
    } else if (a == "--netlist") {
      if (const char* v = next()) netlist_path = v;
    } else if (a == "--arch") {
      if (const char* v = next()) arch_name = v;
    } else if (a == "--arch-file") {
      if (const char* v = next()) arch_file = v;
    } else if (a == "--flow") {
      if (const char* v = next()) which = v[0];
    } else if (a == "--clock") {
      if (const char* v = next()) clock_ps = std::atof(v);
    } else if (a == "--svg") {
      if (const char* v = next()) svg_path = v;
    } else if (a == "--save-mapped") {
      if (const char* v = next()) save_path = v;
    } else if (a == "--save-verilog") {
      if (const char* v = next()) verilog_path = v;
    } else if (a == "--trace") {
      if (const char* v = next()) trace_path = v;
    } else if (a == "--metrics-json") {
      if (const char* v = next()) metrics_path = v;
    } else if (a == "--metrics-openmetrics") {
      if (const char* v = next()) openmetrics_path = v;
    } else if (a == "--memtrack") {
      want_memtrack = true;
    } else if (a == "--power") {
      want_power = true;
    } else if (a == "--cec-force-bdd") {
      cec_force_bdd = true;
    } else if (a == "--verify") {
      const char* v = next();
      const std::string level = v ? v : "";
      if (level == "off") {
        verify_level = verify::VerifyLevel::kOff;
      } else if (level == "lint") {
        verify_level = verify::VerifyLevel::kLint;
      } else if (level == "equiv") {
        verify_level = verify::VerifyLevel::kLintEquiv;
      } else if (level == "exact") {
        verify_level = verify::VerifyLevel::kExact;
      } else {
        usage(argv[0]);
        return 2;
      }
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // Resolve the design.
  designs::BenchmarkDesign design;
  if (!netlist_path.empty()) {
    auto loaded = netlist::load_netlist(netlist_path);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: %s\n", loaded.error.c_str());
      return 1;
    }
    design.netlist = std::move(loaded.netlist);
    design.clock_period_ps = clock_ps > 0 ? clock_ps : 5000.0;
  } else if (design_name == "alu") {
    design = designs::make_alu();
  } else if (design_name == "firewire") {
    design = designs::make_firewire();
  } else if (design_name == "fpu") {
    design = designs::make_fpu(8, 23, 4);
  } else if (design_name == "switch") {
    design = designs::make_network_switch();
  } else if (design_name == "adder") {
    design = {designs::make_ripple_adder(32), 8000.0, true};
  } else if (design_name == "counter") {
    design = {designs::make_counter(16), 2500.0, false};
  } else {
    usage(argv[0]);
    return 2;
  }
  if (clock_ps > 0) design.clock_period_ps = clock_ps;

  core::PlbArchitecture arch = arch_name == "lut" ? core::PlbArchitecture::lut_based()
                                                   : core::PlbArchitecture::granular();
  if (!arch_file.empty()) {
    auto parsed = core::load_architecture(arch_file);
    if (!parsed.ok) {
      std::fprintf(stderr, "error: %s\n", parsed.error.c_str());
      return 1;
    }
    arch = std::move(parsed.arch);
  }
  if (which != 'a' && which != 'b') {
    usage(argv[0]);
    return 2;
  }

  flow::FlowOptions fopts;
  fopts.verify_level = verify_level;
  fopts.cec.force_bdd = cec_force_bdd;
  fopts.trace = !trace_path.empty();
  fopts.metrics = !metrics_path.empty() || !openmetrics_path.empty();
  fopts.memtrack = want_memtrack;
  const auto r = flow::run_flow(design, arch, which, fopts);
  std::printf("design        %s\n", r.design.c_str());
  std::printf("architecture  %s, flow %c\n", r.arch.c_str(), r.flow);
  std::printf("gates         %.0f NAND2-eq\n", r.gate_count_nand2);
  std::printf("compaction    %.1f%% gate-area reduction\n",
              100 * r.compaction.area_reduction());
  std::printf("die area      %.0f um2%s\n", r.die_area_um2,
              which == 'b' ? (" (" + std::to_string(r.plbs) + " PLBs)").c_str() : "");
  std::printf("wirelength    %.0f um\n", r.wirelength_um);
  std::printf("critical path %.0f ps (clock %.0f ps, top-10 slack %.1f ps)\n",
              r.critical_delay_ps, r.clock_period_ps, r.avg_slack_top10_ps);
  if (verify_level != verify::VerifyLevel::kOff)
    std::printf("verification  %s: clean (%d warnings)\n",
                verify_level == verify::VerifyLevel::kExact        ? "exact"
                : verify_level == verify::VerifyLevel::kLintEquiv ? "lint+equiv"
                                                                  : "lint",
                r.verify.warning_count());
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << r.obs.chrome_trace_json();
    std::printf("trace         %s (%zu spans; open in ui.perfetto.dev)\n",
                trace_path.c_str(), r.obs.spans.size());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    out << r.obs.metrics_json();
    std::printf("metrics       %s (%zu counters)\n", metrics_path.c_str(),
                r.obs.counters.size());
  }
  if (!openmetrics_path.empty()) {
    std::ofstream out(openmetrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", openmetrics_path.c_str());
      return 1;
    }
    out << obs::openmetrics_text(r.obs);
    std::printf("openmetrics   %s (scrape-ready exposition)\n",
                openmetrics_path.c_str());
  }

  // Artifacts need the intermediate netlists: rebuild the front of the flow.
  if (!svg_path.empty() || !save_path.empty() || !verilog_path.empty() || want_power) {
    auto mapped = synth::tech_map(design.netlist, synth::cell_target(arch),
                                  synth::Objective::kDelay);
    auto comp = compact::compact_from(design.netlist, mapped.netlist, arch);
    synth::insert_buffers(comp.netlist, 8);
    if (!save_path.empty()) {
      if (!netlist::save_netlist(save_path, comp.netlist)) {
        std::fprintf(stderr, "error: cannot write %s\n", save_path.c_str());
        return 1;
      }
      std::printf("saved         %s (compacted netlist)\n", save_path.c_str());
    }
    if (!verilog_path.empty()) {
      if (!netlist::save_verilog(verilog_path, comp.netlist)) {
        std::fprintf(stderr, "error: cannot write %s\n", verilog_path.c_str());
        return 1;
      }
      std::printf("saved         %s (structural Verilog)\n", verilog_path.c_str());
    }
    const auto placed = place::place(comp.netlist);
    if (want_power) {
      timing::PowerOptions po;
      po.clock_period_ps = design.clock_period_ps;
      const auto pw = timing::estimate_power(comp.netlist, placed, po);
      std::printf("power         %.2f mW dynamic + %.2f mW clock = %.2f mW "
                  "(avg toggle rate %.2f)\n",
                  pw.dynamic_mw, pw.clock_mw, pw.total_mw, pw.avg_toggle_rate);
    }
    if (!svg_path.empty()) {
      const auto packed = pack::pack(comp.netlist, placed, arch);
      if (!pack::write_layout_svg(svg_path, comp.netlist, packed, arch)) {
        std::fprintf(stderr, "error: cannot write %s\n", svg_path.c_str());
        return 1;
      }
      std::printf("layout        %s (%dx%d tiles)\n", svg_path.c_str(), packed.grid_w,
                  packed.grid_h);
    }
  }
  return 0;
}
