// Datapath example: full-adder packing on ripple-carry adders.
//
//   $ build/examples/adder_datapath [bits]
//
// Demonstrates the paper's Section 2.2 result end to end: the analytic
// full-adder plan, then an actual adder netlist through the flow showing the
// fused FA macros occupying one PLB per bit on the granular architecture.

#include <cstdio>
#include <cstdlib>

#include "compact/compact.hpp"
#include "core/fa_packing.hpp"
#include "designs/designs.hpp"
#include "flow/flow.hpp"
#include "netlist/simulate.hpp"
#include "synth/mapper.hpp"

int main(int argc, char** argv) {
  using namespace vpga;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 16;
  if (bits < 2 || bits > 64) {
    std::fprintf(stderr, "usage: %s [bits 2..64]\n", argv[0]);
    return 2;
  }

  const auto gran = core::PlbArchitecture::granular();
  const auto lut = core::PlbArchitecture::lut_based();

  std::printf("== analytic plan (Section 2.2) ==\n");
  for (const auto* arch : {&gran, &lut}) {
    const auto plan = core::plan_ripple_adder(*arch, bits);
    std::printf("  %-13s %2d-bit adder: %3d PLBs, carry chain %.0f ps\n",
                arch->name.c_str(), bits, plan.plbs, plan.critical_path_ps);
  }

  std::printf("\n== through the real flow ==\n");
  const auto src = designs::make_ripple_adder(bits);
  for (const auto* arch : {&gran, &lut}) {
    const auto mapped =
        synth::tech_map(src, synth::cell_target(*arch), synth::Objective::kDelay);
    auto comp = compact::compact_from(src, mapped.netlist, *arch);
    // Verify functional equivalence through the transformations.
    const bool ok = netlist::equivalent_random_sim(src, comp.netlist, 256);
    const int fas =
        comp.report.config_histogram[static_cast<int>(core::ConfigKind::kFullAdder)];
    std::printf("  %-13s: %d FA macros fused, equivalence %s\n", arch->name.c_str(), fas,
                ok ? "OK" : "FAILED");
  }

  designs::BenchmarkDesign d{designs::make_ripple_adder(bits), 8000.0, true};
  const auto g = flow::run_flow(d, gran, 'b');
  const auto l = flow::run_flow(d, lut, 'b');
  std::printf("\n  granular: %3d PLBs, die %7.0f um2, critical %5.0f ps\n", g.plbs,
              g.die_area_um2, g.critical_delay_ps);
  std::printf("  LUT     : %3d PLBs, die %7.0f um2, critical %5.0f ps\n", l.plbs,
              l.die_area_um2, l.critical_delay_ps);
  std::printf("  granular uses %.2fx fewer PLBs and is %.2fx faster\n",
              static_cast<double>(l.plbs) / g.plbs, l.critical_delay_ps / g.critical_delay_ps);
  return 0;
}
