// NPN coverage report: which *kinds* of 3-input logic each PLB element and
// configuration captures — the function-class lens the paper's predecessor
// studies used to motivate heterogeneous logic blocks.
//
//   $ build/examples/npn_coverage_report

#include <cstdio>

#include "common/table.hpp"
#include "core/config.hpp"
#include "logic/npn.hpp"
#include "logic/s3.hpp"

int main() {
  using namespace vpga;
  using core::ConfigKind;

  const auto& classes = logic::npn_classes();
  std::printf("The 256 three-input functions form %zu NPN classes:\n\n",
              classes.size());

  struct Column {
    const char* label;
    logic::FnSet3 set;
  };
  const std::vector<Column> columns = {
      {"ND3", core::config_spec(ConfigKind::kNd3).coverage},
      {"MX", core::config_spec(ConfigKind::kMx).coverage},
      {"NDMX", core::config_spec(ConfigKind::kNdmx).coverage},
      {"XOAMX", core::config_spec(ConfigKind::kXoamx).coverage},
      {"S3", logic::analyze_s3().feasible},
      {"mod-S3", logic::modified_s3_set3()},
  };

  common::TextTable t({"NPN class", "size", "ND3", "MX", "NDMX", "XOAMX", "S3", "mod-S3"});
  std::vector<std::vector<double>> cov;
  for (const auto& col : columns) cov.push_back(logic::npn_coverage(col.set));
  for (std::size_t i = 0; i < classes.size(); ++i) {
    std::vector<std::string> row = {classes[i].name, std::to_string(classes[i].size)};
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const double v = cov[c][i];
      row.push_back(v == 1.0 ? "full" : v == 0.0 ? "-" : common::TextTable::num(100 * v, 0) + "%");
    }
    t.add_row(row);
  }
  t.print();

  std::printf(
      "\nReading: the designated-select S3 gate covers most classes only\n"
      "partially (pin roles break NPN symmetry); the modified S3 — the\n"
      "granular PLB's XOANDMX configuration — covers every class, which is\n"
      "the paper's Figure 3 claim seen through the NPN lens.\n");
  return 0;
}
