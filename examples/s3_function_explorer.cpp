// S3 function explorer: classify any 3-input function the way Section 2
// does, and show how each PLB would implement it.
//
//   $ build/examples/s3_function_explorer 96        # 3-input XOR (tt 0x96)
//   $ build/examples/s3_function_explorer           # a guided tour

#include <cstdio>
#include <cstdlib>

#include "core/match.hpp"
#include "logic/lut_decompose.hpp"
#include "logic/s3.hpp"

namespace {

void explore(std::uint8_t tt) {
  using namespace vpga;
  const logic::TruthTable f(3, tt);
  std::printf("f = 0x%02X  rows(abc=000..111): %s  support %d\n", tt,
              f.to_string().c_str(), f.support_size());

  const auto a = logic::analyze_s3();
  std::printf("  S3 gate:        %s\n", logic::to_string(a.category[tt]));
  std::printf("  modified S3:    %s\n",
              logic::modified_s3_set3().test(tt) ? "implementable" : "not implementable");

  for (const auto& arch :
       {core::PlbArchitecture::granular(), core::PlbArchitecture::lut_based()}) {
    const auto cfg = core::min_area_config(arch, tt);
    const auto fast = core::min_delay_config(arch, tt);
    if (cfg) {
      std::printf("  %-13s: min-area %s (%.1f um2), min-delay %s (%.0f ps @3fF)\n",
                  arch.name.c_str(), core::config_spec(*cfg).name.c_str(),
                  core::config_spec(*cfg).mapped_area_um2,
                  core::config_spec(*fast).name.c_str(),
                  core::config_spec(*fast).arc.delay(3.0));
    } else {
      std::printf("  %-13s: needs multiple levels\n", arch.name.c_str());
    }
  }

  // The Figure-5 LUT realization, for reference.
  const auto r = logic::decompose_lut3(f);
  std::printf("  3-LUT mux tree leaves (d00 d01 d10 d11): %s %s %s %s\n\n",
              logic::to_string(r.leaf[0]), logic::to_string(r.leaf[1]),
              logic::to_string(r.leaf[2]), logic::to_string(r.leaf[3]));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vpga;
  if (argc > 1) {
    explore(static_cast<std::uint8_t>(std::strtoul(argv[1], nullptr, 16)));
    return 0;
  }
  std::printf("== a guided tour of Section 2's key functions ==\n\n");
  explore(static_cast<std::uint8_t>(logic::tt3::nand3().bits()));  // simple gate
  explore(static_cast<std::uint8_t>(logic::tt3::mux().bits()));    // 2:1 mux
  explore(static_cast<std::uint8_t>((logic::tt3::a() ^ logic::tt3::b()).bits()));
  explore(static_cast<std::uint8_t>(logic::tt3::xor3().bits()));   // FA sum
  explore(static_cast<std::uint8_t>(logic::tt3::maj3().bits()));   // FA carry
  std::printf("pass a hex truth table (e.g. `s3_function_explorer e8`) to explore more.\n");
  return 0;
}
